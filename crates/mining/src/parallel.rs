//! Root-partitioned parallel mining over [`PlanMiner`] workers.
//!
//! Level-0 DFS trees are independent, so the vertex range is split into
//! more [`MiningTask`]s than workers and workers obtain tasks dynamically
//! (a task holding a hub vertex does not serialize the run). Two
//! schedulers implement that claim step:
//!
//! - **Work stealing** (`EngineConfig::work_stealing`, the default): each
//!   worker owns a mutex-guarded deque seeded with a round-robin stripe of
//!   tasks. Workers pop locally from the front; an empty worker steals the
//!   back half of a victim's deque, and splits a victim's lone oversized
//!   task at root granularity ([`MiningTask::split_off_half`]) when there
//!   is nothing whole left to take. Local pops touch an uncontended mutex,
//!   and a straggler grinding a hub-heavy range sheds its queued tail to
//!   idle peers.
//! - **Shared cursor** (`--no-steal`): every worker claims the next task
//!   index from one shared atomic — the PR-2 baseline, kept as the
//!   `steal_balance` benchmark's comparison point.
//!
//! Each worker owns one [`PlanMiner`] (and therefore one scratch arena)
//! for its whole lifetime, and reduces into a private `u64`. The final
//! reduction is a sum of per-task partial counts: each task's count is a
//! pure function of its root range, and addition over `u64` is commutative
//! and associative, so the result is **bit-identical** to the sequential
//! count regardless of thread count or steal schedule — the determinism
//! tests assert exactly this (DESIGN.md §14).

use crate::cancel::{CancelKind, CancelToken};
use crate::config::EngineConfig;
use crate::error::{panic_message, EngineError, PartitionFailure};
use crate::executor::{count_plan_with, MineOutcome, PlanMiner, RunHalt};
use crate::gauge::MemGauge;
use crate::sink::{CountSink, Sink};
use crate::task::MiningTask;
use fingers_conc::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use fingers_conc::sync::{Mutex, PoisonError};
use fingers_graph::hubs::HubSet;
use fingers_graph::CsrGraph;
use fingers_pattern::benchmarks::Benchmark;
use fingers_pattern::{ExecutionPlan, MultiPlan};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

// lint: lock-order(deque < failures)

/// Tasks created per worker: oversubscription for dynamic load balance.
/// Generous because tasks are two integers — the cost of a fine partition
/// is one mutex lock (stealing) or one fetch-add (cursor) per task, while
/// a coarse one leaves a hub-heavy chunk indivisible once a worker starts
/// it (in-flight tasks are never split).
const TASKS_PER_WORKER: usize = 32;

/// Per-worker deques of unstarted tasks for the work-stealing scheduler.
///
/// The deques only ever hold tasks no worker has begun, so stealing or
/// splitting one can never duplicate or drop roots: at every instant the
/// queued tasks plus the in-flight tasks partition the unmined remainder
/// of `[0, |V|)`. Mutex-guarded rather than lock-free Chase–Lev: the claim
/// rate is one lock per *task* (thousands of DFS roots), so even a
/// contended lock costs noise, and a mutex keeps the scheduler trivially
/// race-free.
pub struct StealPool {
    deques: Vec<Mutex<VecDeque<MiningTask>>>,
}

impl StealPool {
    /// Distributes `tasks` across `workers` deques round-robin (task `i`
    /// to worker `i % workers`), preserving ascending root order inside
    /// each deque. Round-robin rather than contiguous blocks: real graphs
    /// sort hubs into one id region (CSR relabeling, crawl order), and a
    /// block seed would hand that entire region to one owner who then eats
    /// its heavy tasks serially — thieves only relieve the queued tail.
    /// Striping spreads the hot region across every deque up front, so
    /// stealing only has to correct residual skew.
    pub fn new(tasks: &[MiningTask], workers: usize) -> Self {
        let workers = workers.max(1);
        let mut deques: Vec<Mutex<VecDeque<MiningTask>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, t) in tasks.iter().enumerate() {
            deques[i % workers]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(t.clone());
        }
        Self { deques }
    }

    /// The next task for worker `me`: its own deque's front, else stolen
    /// work. Returns `None` only when every deque is empty at scan time —
    /// tasks still in flight on other workers are never visible here, so a
    /// `None` is final for this worker (peers only ever *remove* queued
    /// work; splits happen under the victim's lock during the scan).
    pub fn claim(&self, me: usize) -> Option<MiningTask> {
        // lock: deque
        if let Some(t) = self.deques[me]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            return Some(t);
        }
        let n = self.deques.len();
        for off in 1..n {
            if let Some(stolen) = self.steal_from((me + off) % n) {
                // lock: deque
                let mut mine = self.deques[me]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                mine.extend(stolen);
                let t = mine.pop_front();
                drop(mine);
                if t.is_some() {
                    return t;
                }
            }
        }
        None
    }

    /// Takes the back half of `victim`'s queued tasks (its furthest-future
    /// root ranges, so the victim keeps the work nearest what it is mining
    /// now). A victim down to one splittable task gets it halved at root
    /// granularity instead; a lone unsplittable task is taken whole.
    // lock: acquires(deque)
    fn steal_from(&self, victim: usize) -> Option<VecDeque<MiningTask>> {
        // lock: deque
        let mut v = self.deques[victim]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match v.len() {
            0 => None,
            1 => {
                // §11: len() == 1 was just checked under this lock.
                #[allow(clippy::expect_used)]
                let last = v.front_mut().expect("deque has one task");
                match last.split_off_half() {
                    Some(upper) => Some(VecDeque::from([upper])),
                    None => v.pop_front().map(|t| VecDeque::from([t])),
                }
            }
            len => Some(v.split_off(len - len / 2)),
        }
    }

    /// Seeded-bug fixture for the model checker: a deliberately broken
    /// `claim` that peeks the front task under one lock acquisition and pops
    /// it under a *second* one, releasing the deque lock in between. A thief
    /// that splits the peeked task in the window makes this worker mine the
    /// stale full-range clone while the thief mines the stolen half — the
    /// exact lost-update/double-mine family of bug the deque harness exists
    /// to catch. Never called by production code.
    #[cfg(feature = "model-check")]
    pub fn claim_racy(&self, me: usize) -> Option<MiningTask> {
        // lock: deque
        let peeked = self.deques[me]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .front()
            .cloned();
        if let Some(t) = peeked {
            // BUG (intentional): the lock was dropped after the peek, so the
            // pop below may remove a task a thief has since split or taken.
            // lock: deque
            self.deques[me]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            return Some(t);
        }
        // Fall back to the correct steal path once the own deque is empty.
        self.claim(me)
    }
}

/// How a worker obtains its next task: the work-stealing deques or the
/// shared-cursor baseline. Both hand every task out exactly once, so the
/// summed counts are identical — only the schedule (and therefore load
/// balance) differs.
enum TaskSource<'t> {
    Cursor {
        tasks: &'t [MiningTask],
        cursor: AtomicUsize,
    },
    Steal(StealPool),
}

impl<'t> TaskSource<'t> {
    /// A source over `tasks` for `workers` workers, stealing iff `steal`.
    fn new(tasks: &'t [MiningTask], workers: usize, steal: bool) -> Self {
        if steal {
            TaskSource::Steal(StealPool::new(tasks, workers))
        } else {
            TaskSource::Cursor {
                tasks,
                cursor: AtomicUsize::new(0),
            }
        }
    }

    /// Claims the next task for worker `me` (`None` = no work left).
    fn claim(&self, me: usize) -> Option<MiningTask> {
        match self {
            TaskSource::Cursor { tasks, cursor } => {
                // ord: relaxed(pure ticket counter; the claimed task data is read-only shared)
                tasks.get(cursor.fetch_add(1, Ordering::Relaxed)).cloned()
            }
            TaskSource::Steal(pool) => pool.claim(me),
        }
    }
}

/// Counts embeddings of `plan` in `graph` using `threads` workers, with the
/// default [`EngineConfig`].
///
/// Deterministic: returns exactly [`crate::count_plan`]'s value for every
/// thread count (the reduction is an order-independent `u64` sum).
/// `threads == 0` is treated as 1.
///
/// # Panics
///
/// Re-raises any panic from a worker thread (none occur for plans produced
/// by the compiler; see the invariants documented on [`PlanMiner`]).
pub fn count_plan_parallel(graph: &CsrGraph, plan: &ExecutionPlan, threads: usize) -> u64 {
    count_plan_parallel_with(graph, plan, threads, &EngineConfig::default())
}

/// Counts embeddings of `plan` using `threads` workers under an explicit
/// engine config.
///
/// The hub set is identified once here and shared (`Arc`) across workers;
/// each worker still owns its private bitmap cache, so the hot path stays
/// synchronization-free. Counts are identical for every config and thread
/// count.
pub fn count_plan_parallel_with(
    graph: &CsrGraph,
    plan: &ExecutionPlan,
    threads: usize,
    config: &EngineConfig,
) -> u64 {
    let threads = effective_threads(threads, graph.vertex_count());
    if threads <= 1 {
        return count_plan_with(graph, plan, config);
    }
    let hubs = config.hub_set(graph);
    let tasks = MiningTask::partition(graph.vertex_count(), threads * TASKS_PER_WORKER);
    let source = TaskSource::new(&tasks, threads, config.work_stealing);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|me| {
                let source = &source;
                let hubs = hubs.clone();
                scope.spawn(move || {
                    let mut miner = PlanMiner::with_hubs(graph, plan, hubs, config);
                    let mut sink = CountSink::default();
                    while let Some(task) = source.claim(me) {
                        miner.run(task, &mut sink);
                    }
                    sink.count
                })
            })
            .collect();
        workers
            .into_iter()
            // §11: the infallible API treats a worker panic as fatal —
            // propagating it here is the documented policy, not a bug.
            .map(
                #[allow(clippy::expect_used)] // §11: justified above
                |w| w.join().expect("mining worker panicked"),
            )
            .sum()
    })
}

/// [`count_plan_parallel_with`] plus a schedule trace: returns the count
/// and, per worker, the tasks that worker actually executed, in execution
/// order (tasks split by a thief appear as their split ranges).
///
/// Bench support for the `steal_balance` experiment: replaying each
/// worker's task list serially — uncontended — measures the schedule's
/// critical path, which is what the wall clock would show on a machine
/// with at least `threads` idle cores (a contended or single-core host
/// inflates every concurrent measurement uniformly, hiding exactly the
/// imbalance the experiment exists to show). The count is bit-identical
/// to [`count_plan_parallel_with`]; the trace's tasks partition
/// `[0, |V|)` for every scheduler and thread count.
pub fn count_plan_parallel_trace(
    graph: &CsrGraph,
    plan: &ExecutionPlan,
    threads: usize,
    config: &EngineConfig,
) -> (u64, Vec<Vec<MiningTask>>) {
    let threads = effective_threads(threads, graph.vertex_count());
    let hubs = config.hub_set(graph);
    let tasks = MiningTask::partition(graph.vertex_count(), threads * TASKS_PER_WORKER);
    let source = TaskSource::new(&tasks, threads, config.work_stealing);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|me| {
                let source = &source;
                let hubs = hubs.clone();
                scope.spawn(move || {
                    let mut miner = PlanMiner::with_hubs(graph, plan, hubs, config);
                    let mut sink = CountSink::default();
                    let mut trace = Vec::new();
                    while let Some(task) = source.claim(me) {
                        trace.push(task.clone());
                        miner.run(task, &mut sink);
                    }
                    (sink.count, trace)
                })
            })
            .collect();
        let mut total = 0u64;
        let mut traces = Vec::with_capacity(threads);
        for w in workers {
            // §11: same policy as the infallible entry point above — a
            // worker panic is fatal for the untraced and traced paths alike.
            #[allow(clippy::expect_used)] // §11: justified above
            let (count, trace) = w.join().expect("mining worker panicked");
            total += count;
            traces.push(trace);
        }
        (total, traces)
    })
}

/// Fallible counterpart of [`count_plan_parallel`]: worker panics are
/// isolated per task instead of aborting the process.
///
/// # Errors
///
/// Returns [`EngineError::WorkerPanic`] naming every failed root partition.
pub fn try_count_plan_parallel(
    graph: &CsrGraph,
    plan: &ExecutionPlan,
    threads: usize,
) -> Result<u64, EngineError> {
    try_count_plan_parallel_with(graph, plan, threads, &EngineConfig::default())
}

/// Fallible counterpart of [`count_plan_parallel_with`].
///
/// Every task runs under `catch_unwind`; a panicking task is recorded (with
/// its root partition and panic message), the worker's miner is rebuilt —
/// a panic can leave scratch state mid-DFS — and mining continues with the
/// remaining tasks so *all* failures of a run are reported at once. On any
/// failure the whole count is discarded: a partial count would silently
/// under-report.
///
/// On success the count is bit-identical to [`count_plan_parallel_with`].
///
/// # Errors
///
/// Returns [`EngineError::WorkerPanic`] carrying the failed partitions in
/// ascending root order.
pub fn try_count_plan_parallel_with(
    graph: &CsrGraph,
    plan: &ExecutionPlan,
    threads: usize,
    config: &EngineConfig,
) -> Result<u64, EngineError> {
    try_count_plan_parallel_shared(
        graph,
        plan,
        threads,
        config,
        config.hub_set(graph),
        &CancelToken::new(),
    )
}

/// The engine's full-featured counting entry point: fallible, cancellable,
/// and hub-sharing. Everything `try_count_plan_parallel_with` does, plus:
///
/// - `hubs` is taken pre-identified instead of recomputed, so a resident
///   graph store (the service's storage layer) can run top-k hub selection
///   once at load time and share one `Arc<HubSet>` across every query that
///   ever touches the graph;
/// - `cancel` is polled by every worker at root-task boundaries (between
///   claimed tasks *and* between level-0 roots inside a task, via
///   [`PlanMiner::run_cancellable`]); once it fires, all workers stop
///   promptly, every partial count is discarded, and the call returns
///   [`EngineError::Cancelled`] — never a partial total.
///
/// On success the count is bit-identical to [`count_plan_parallel_with`]
/// for every thread count, token state, and hub set: cancellation is
/// observed or it is not, and an uncancelled run reduces the same
/// per-worker sums. A run that *completes* just as its deadline passes
/// still returns its (complete, correct) count: cancellation is only
/// reported when a worker actually stopped early.
///
/// # Errors
///
/// [`EngineError::InvalidPlan`] before any worker runs,
/// [`EngineError::Cancelled`] when the token interrupted the run, and
/// [`EngineError::WorkerPanic`] naming every failed root partition.
pub fn try_count_plan_parallel_shared(
    graph: &CsrGraph,
    plan: &ExecutionPlan,
    threads: usize,
    config: &EngineConfig,
    hubs: Option<Arc<HubSet>>,
    cancel: &CancelToken,
) -> Result<u64, EngineError> {
    try_count_plan_parallel_governed(graph, plan, threads, config, hubs, cancel, None)
}

/// The governed form of [`try_count_plan_parallel_shared`]: everything it
/// does, plus memory governance. When `config.query_mem_budget` is set or
/// a `global_gauge` is supplied, the run meters its scratch footprint on a
/// per-query gauge (a child of `global_gauge` when one is given, so the
/// daemon's process-wide gauge sees every query's bytes). Workers publish
/// at root-task boundaries — the cancellation cadence — and a budget
/// violation aborts the whole run with
/// [`EngineError::MemBudgetExceeded`] under the cancellation contract:
/// all-or-nothing, no partial count, gauge back to baseline on return.
///
/// # Errors
///
/// Everything [`try_count_plan_parallel_shared`] returns, plus
/// [`EngineError::MemBudgetExceeded`].
pub fn try_count_plan_parallel_governed(
    graph: &CsrGraph,
    plan: &ExecutionPlan,
    threads: usize,
    config: &EngineConfig,
    hubs: Option<Arc<HubSet>>,
    cancel: &CancelToken,
    global_gauge: Option<&MemGauge>,
) -> Result<u64, EngineError> {
    // Fail fast before spawning anything: an unsound plan would read
    // unmaterialized buffers or miscount in every worker at once.
    let report = fingers_verify::verify(plan);
    if !report.is_sound() {
        return Err(EngineError::InvalidPlan { report });
    }
    // One shared gauge for the whole query; each worker's miner publishes
    // its own footprint into it. Skipped entirely (no atomics anywhere)
    // when neither a budget nor a global gauge asks for metering.
    let query_gauge = if config.query_mem_budget.is_some() || global_gauge.is_some() {
        Some(global_gauge.map_or_else(MemGauge::new, MemGauge::child))
    } else {
        None
    };
    let threads = effective_threads(threads, graph.vertex_count());
    let tasks = MiningTask::partition(graph.vertex_count(), threads * TASKS_PER_WORKER);
    let source = TaskSource::new(&tasks, threads, config.work_stealing);
    let failures: Mutex<Vec<PartitionFailure>> = Mutex::new(Vec::new());
    // Set by any worker that *observed* the token and stopped early; the
    // final verdict reads this rather than the token so a run that finished
    // all its tasks before the deadline passed is still a success.
    let interrupted = AtomicBool::new(false);
    // Bytes in use at the boundary where some worker saw the budget blown
    // (0 = no violation; a violation always involves used > budget ≥ 0).
    let over_budget = AtomicU64::new(0);
    let new_miner = || {
        let mut miner = PlanMiner::with_hubs(graph, plan, hubs.clone(), config);
        if let Some(gauge) = &query_gauge {
            miner.attach_gauge(gauge.clone(), config.query_mem_budget);
        }
        miner
    };
    let worker = |me: usize| {
        let mut miner = new_miner();
        let mut local = 0u64;
        loop {
            if cancel.is_cancelled() {
                // ord: relaxed(flag only latches true; the scope join synchronizes before into_inner reads it)
                interrupted.store(true, Ordering::Relaxed);
                break;
            }
            let Some(task) = source.claim(me) else { break };
            let mut sink = CountSink::default();
            match catch_unwind(AssertUnwindSafe(|| {
                // Chaos worker-panic site: inside the per-task isolation,
                // so an injected death surfaces exactly like a real one.
                crate::chaos::maybe_panic_worker();
                miner.run_governed(task.clone(), &mut sink, cancel)
            })) {
                Ok(Ok(())) => local += sink.count,
                Ok(Err(RunHalt::Cancelled)) => {
                    // Interrupted mid-task: the sink holds a partial tally
                    // for this task — drop it and stop claiming.
                    // ord: relaxed(flag only latches true; the scope join synchronizes before into_inner reads it)
                    interrupted.store(true, Ordering::Relaxed);
                    break;
                }
                Ok(Err(RunHalt::MemBudget { used_bytes, .. })) => {
                    // ord: relaxed(monotone max of a scalar; read only after the scope join)
                    over_budget.fetch_max(used_bytes, Ordering::Relaxed);
                    break;
                }
                Err(payload) => {
                    // lock: failures
                    failures
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(PartitionFailure {
                            task,
                            message: panic_message(payload),
                        });
                    // The miner's scratch state is mid-DFS; rebuild it
                    // before touching the next task.
                    miner = new_miner();
                }
            }
        }
        local
    };
    let total: u64 = if threads <= 1 {
        worker(0)
    } else {
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|me| {
                    let worker = &worker;
                    scope.spawn(move || worker(me))
                })
                .collect();
            workers
                .into_iter()
                // §11: each worker body is wrapped in catch_unwind, so the join
                // handle itself cannot carry a panic; one escaping means the
                // isolation wrapper is broken.
                .map(
                    #[allow(clippy::expect_used)] // §11: justified above
                    |w| w.join().expect("isolated worker cannot panic"),
                )
                .sum()
        })
    };
    let mut failures = failures.into_inner().unwrap_or_else(|p| p.into_inner());
    if !failures.is_empty() {
        // Root order, not claim order: a steal schedule has no global claim
        // sequence, and root order is deterministic for reporting either way
        // (tasks never overlap, so starts are unique).
        failures.sort_by_key(|f| f.task.start);
        return Err(EngineError::WorkerPanic { failures });
    }
    if interrupted.into_inner() {
        return Err(EngineError::Cancelled {
            // A worker only sets `interrupted` after seeing the token
            // cancelled, and tokens never un-cancel, so a kind is always
            // available; `Explicit` is an unreachable fallback.
            kind: cancel.kind().unwrap_or(CancelKind::Explicit),
        });
    }
    let used_bytes = over_budget.into_inner();
    if used_bytes > 0 {
        return Err(EngineError::MemBudgetExceeded {
            used_bytes,
            // A MemBudget halt can only come from a governed miner, which
            // only enforces a budget when the config carries one; 0 is an
            // unreachable fallback.
            budget_bytes: config.query_mem_budget.unwrap_or_default(),
        });
    }
    Ok(total)
}

/// Fallible counterpart of [`count_multi_parallel`].
///
/// # Errors
///
/// Returns the first constituent plan's [`EngineError`] (per-plan counting
/// stops at the first failing plan).
pub fn try_count_multi_parallel(
    graph: &CsrGraph,
    multi: &MultiPlan,
    threads: usize,
) -> Result<MineOutcome, EngineError> {
    try_count_multi_parallel_with(graph, multi, threads, &EngineConfig::default())
}

/// Fallible counterpart of [`count_multi_parallel_with`].
///
/// # Errors
///
/// Returns the first constituent plan's [`EngineError`].
pub fn try_count_multi_parallel_with(
    graph: &CsrGraph,
    multi: &MultiPlan,
    threads: usize,
    config: &EngineConfig,
) -> Result<MineOutcome, EngineError> {
    Ok(MineOutcome {
        per_pattern: multi
            .plans()
            .iter()
            .map(|p| try_count_plan_parallel_with(graph, p, threads, config))
            .collect::<Result<_, _>>()?,
    })
}

/// Fallible counterpart of [`count_benchmark_parallel`].
///
/// # Errors
///
/// Returns the first constituent plan's [`EngineError`].
pub fn try_count_benchmark_parallel(
    graph: &CsrGraph,
    benchmark: Benchmark,
    threads: usize,
) -> Result<MineOutcome, EngineError> {
    try_count_multi_parallel(graph, &benchmark.plan(), threads)
}

/// Fallible counterpart of [`count_benchmark_parallel_with`].
///
/// # Errors
///
/// Returns the first constituent plan's [`EngineError`].
pub fn try_count_benchmark_parallel_with(
    graph: &CsrGraph,
    benchmark: Benchmark,
    threads: usize,
    config: &EngineConfig,
) -> Result<MineOutcome, EngineError> {
    try_count_multi_parallel_with(graph, &benchmark.plan(), threads, config)
}

/// Counts every pattern of a multi-plan with `threads` workers per plan.
///
/// Per-pattern counts equal [`crate::count_multi`]'s exactly.
pub fn count_multi_parallel(graph: &CsrGraph, multi: &MultiPlan, threads: usize) -> MineOutcome {
    count_multi_parallel_with(graph, multi, threads, &EngineConfig::default())
}

/// Counts every pattern of a multi-plan with `threads` workers per plan
/// under an explicit engine config.
pub fn count_multi_parallel_with(
    graph: &CsrGraph,
    multi: &MultiPlan,
    threads: usize,
    config: &EngineConfig,
) -> MineOutcome {
    MineOutcome {
        per_pattern: multi
            .plans()
            .iter()
            .map(|p| count_plan_parallel_with(graph, p, threads, config))
            .collect(),
    }
}

/// Counts one of the paper's benchmark workloads with `threads` workers.
pub fn count_benchmark_parallel(
    graph: &CsrGraph,
    benchmark: Benchmark,
    threads: usize,
) -> MineOutcome {
    count_multi_parallel(graph, &benchmark.plan(), threads)
}

/// Counts a benchmark workload with `threads` workers under an explicit
/// engine config.
pub fn count_benchmark_parallel_with(
    graph: &CsrGraph,
    benchmark: Benchmark,
    threads: usize,
    config: &EngineConfig,
) -> MineOutcome {
    count_multi_parallel_with(graph, &benchmark.plan(), threads, config)
}

/// Runs `worker` once per claimed root-range task on each of `threads`
/// scoped threads, summing the returned counts. The generic scaffold the
/// brute-force and ESU oracles reuse for their root-partitioned variants.
///
/// `worker(task)` must be a pure function of the task (plus captured shared
/// state) for the sum to be schedule-independent.
///
/// # Panics
///
/// Re-raises any panic from `worker`.
pub fn sum_over_root_tasks<W>(vertex_count: usize, threads: usize, worker: W) -> u64
where
    W: Fn(&MiningTask) -> u64 + Sync,
{
    let threads = effective_threads(threads, vertex_count);
    let tasks = MiningTask::partition(vertex_count, threads.max(1) * TASKS_PER_WORKER);
    if threads <= 1 {
        return tasks.iter().map(&worker).sum();
    }
    let source = TaskSource::new(&tasks, threads, true);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|me| {
                let source = &source;
                let worker = &worker;
                scope.spawn(move || {
                    let mut local = 0u64;
                    while let Some(task) = source.claim(me) {
                        local += worker(&task);
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            // §11: the oracle path has no panic isolation by design —
            // a panic in the reference counter is always a bug.
            .map(
                #[allow(clippy::expect_used)] // §11: justified above
                |w| w.join().expect("oracle worker panicked"),
            )
            .sum()
    })
}

/// Fallible counterpart of [`sum_over_root_tasks`]: each `worker(task)`
/// call runs under `catch_unwind`, panics are collected per task, and the
/// remaining tasks still run. The panic-injection seam the fault-tolerance
/// tests drive, and the scaffold fallible oracle variants can reuse.
///
/// # Errors
///
/// Returns [`EngineError::WorkerPanic`] carrying every failed partition in
/// ascending root order.
pub fn try_sum_over_root_tasks<W>(
    vertex_count: usize,
    threads: usize,
    worker: W,
) -> Result<u64, EngineError>
where
    W: Fn(&MiningTask) -> u64 + Sync,
{
    let threads = effective_threads(threads, vertex_count);
    let tasks = MiningTask::partition(vertex_count, threads.max(1) * TASKS_PER_WORKER);
    let source = TaskSource::new(&tasks, threads, true);
    let failures: Mutex<Vec<PartitionFailure>> = Mutex::new(Vec::new());
    let isolated = |me: usize| {
        let mut local = 0u64;
        while let Some(task) = source.claim(me) {
            match catch_unwind(AssertUnwindSafe(|| worker(&task))) {
                Ok(n) => local += n,
                // lock: failures
                Err(payload) => failures
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(PartitionFailure {
                        task,
                        message: panic_message(payload),
                    }),
            }
        }
        local
    };
    let total: u64 = if threads <= 1 {
        isolated(0)
    } else {
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|me| {
                    let isolated = &isolated;
                    scope.spawn(move || isolated(me))
                })
                .collect();
            workers
                .into_iter()
                // §11: each worker body is wrapped in catch_unwind, so the join
                // handle itself cannot carry a panic; one escaping means the
                // isolation wrapper is broken.
                .map(
                    #[allow(clippy::expect_used)] // §11: justified above
                    |w| w.join().expect("isolated worker cannot panic"),
                )
                .sum()
        })
    };
    let mut failures = failures.into_inner().unwrap_or_else(|p| p.into_inner());
    if failures.is_empty() {
        Ok(total)
    } else {
        failures.sort_by_key(|f| f.task.start);
        Err(EngineError::WorkerPanic { failures })
    }
}

/// Cancellable counterpart of [`try_sum_over_root_tasks`]: workers
/// additionally poll `cancel` before claiming each task and stop once it
/// fires. The cancellation granularity is one task (the `worker` callback
/// is opaque, so there is no per-root poll here); use the plan-mining
/// entry points for finer response.
///
/// # Errors
///
/// [`EngineError::Cancelled`] when the token interrupted the run (the
/// partial sum is discarded), else [`EngineError::WorkerPanic`] as for the
/// plain variant.
pub fn try_sum_over_root_tasks_cancellable<W>(
    vertex_count: usize,
    threads: usize,
    cancel: &CancelToken,
    worker: W,
) -> Result<u64, EngineError>
where
    W: Fn(&MiningTask) -> u64 + Sync,
{
    let threads = effective_threads(threads, vertex_count);
    let tasks = MiningTask::partition(vertex_count, threads.max(1) * TASKS_PER_WORKER);
    let source = TaskSource::new(&tasks, threads, true);
    let failures: Mutex<Vec<PartitionFailure>> = Mutex::new(Vec::new());
    let interrupted = AtomicBool::new(false);
    let isolated = |me: usize| {
        let mut local = 0u64;
        loop {
            if cancel.is_cancelled() {
                // ord: relaxed(flag only latches true; the scope join synchronizes before into_inner reads it)
                interrupted.store(true, Ordering::Relaxed);
                break;
            }
            let Some(task) = source.claim(me) else { break };
            match catch_unwind(AssertUnwindSafe(|| worker(&task))) {
                Ok(n) => local += n,
                // lock: failures
                Err(payload) => failures
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(PartitionFailure {
                        task,
                        message: panic_message(payload),
                    }),
            }
        }
        local
    };
    let total: u64 = if threads <= 1 {
        isolated(0)
    } else {
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|me| {
                    let isolated = &isolated;
                    scope.spawn(move || isolated(me))
                })
                .collect();
            workers
                .into_iter()
                // §11: each worker body is wrapped in catch_unwind, so the join
                // handle itself cannot carry a panic; one escaping means the
                // isolation wrapper is broken.
                .map(
                    #[allow(clippy::expect_used)] // §11: justified above
                    |w| w.join().expect("isolated worker cannot panic"),
                )
                .sum()
        })
    };
    let mut failures = failures.into_inner().unwrap_or_else(|p| p.into_inner());
    if !failures.is_empty() {
        failures.sort_by_key(|f| f.task.start);
        return Err(EngineError::WorkerPanic { failures });
    }
    if interrupted.into_inner() {
        return Err(EngineError::Cancelled {
            kind: cancel.kind().unwrap_or(CancelKind::Explicit),
        });
    }
    Ok(total)
}

/// Clamps a requested thread count to something useful: at least 1, and no
/// more than the number of roots (extra workers would only spin on an empty
/// task queue).
fn effective_threads(requested: usize, vertex_count: usize) -> usize {
    requested.max(1).min(vertex_count.max(1))
}

/// Mines `task` with a fresh sink and returns it — convenience for callers
/// driving [`PlanMiner`] task-by-task (bench harness, tests).
pub fn run_task<S: Sink + Default>(miner: &mut PlanMiner<'_, '_>, task: MiningTask) -> S {
    let mut sink = S::default();
    miner.run(task, &mut sink);
    sink
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_plan;
    use fingers_graph::gen::erdos_renyi;
    use fingers_pattern::{ExecutionPlan, Induced, Pattern};

    #[test]
    fn parallel_equals_sequential_for_every_thread_count() {
        let g = erdos_renyi(60, 240, 11);
        for p in [
            Pattern::triangle(),
            Pattern::four_cycle(),
            Pattern::clique(4),
        ] {
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            let expected = count_plan(&g, &plan);
            for threads in [0, 1, 2, 3, 4, 8] {
                assert_eq!(
                    count_plan_parallel(&g, &plan, threads),
                    expected,
                    "{p} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn multi_plan_parallel_matches_sequential() {
        let g = erdos_renyi(40, 150, 3);
        for b in [Benchmark::Mc3, Benchmark::Tc] {
            let seq = crate::count_benchmark(&g, b);
            assert_eq!(count_benchmark_parallel(&g, b, 4), seq, "{b}");
        }
    }

    #[test]
    fn parallel_configs_agree_with_sequential_baseline() {
        // Bitmap on/off × thread counts all land on the same counts.
        let g = erdos_renyi(50, 300, 29);
        let plan = ExecutionPlan::compile(&Pattern::clique(4), Induced::Vertex);
        let expected = count_plan_with(&g, &plan, &EngineConfig::without_bitmap());
        for cfg in [EngineConfig::without_bitmap(), EngineConfig::default()] {
            for threads in [1, 2, 4] {
                assert_eq!(
                    count_plan_parallel_with(&g, &plan, threads, &cfg),
                    expected,
                    "{threads} threads under {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn steal_and_cursor_schedules_agree_on_hub_heavy_graphs() {
        // A power-law graph concentrates work in a few root tasks — the
        // regime stealing exists for. Counts must be bit-identical across
        // schedulers, thread counts, and simd settings.
        let g = fingers_graph::gen::chung_lu_power_law(&fingers_graph::gen::ChungLuConfig::new(
            500, 6_000, 42,
        ));
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        let expected = count_plan(&g, &plan);
        for cfg in [
            EngineConfig::default(),
            EngineConfig::without_stealing(),
            EngineConfig::without_simd(),
            EngineConfig {
                simd: false,
                work_stealing: false,
                ..EngineConfig::default()
            },
        ] {
            for threads in [1, 2, 4, 8] {
                assert_eq!(
                    count_plan_parallel_with(&g, &plan, threads, &cfg),
                    expected,
                    "{threads} threads under {cfg:?}"
                );
                assert_eq!(
                    try_count_plan_parallel_with(&g, &plan, threads, &cfg).expect("no panic"),
                    expected,
                    "fallible path, {threads} threads under {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn stealing_survives_task_splits_with_few_tasks() {
        // More workers than tasks forces the lone-task split path: with 9
        // vertices and 8 workers the pool starts with at most 9 one-root
        // tasks spread thin, and thieves hit the len==1 branches.
        let g = erdos_renyi(9, 20, 5);
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        let expected = count_plan(&g, &plan);
        for threads in [2, 8] {
            assert_eq!(count_plan_parallel(&g, &plan, threads), expected);
        }
    }

    #[test]
    fn trace_partitions_roots_under_both_schedulers() {
        let g = erdos_renyi(60, 240, 11);
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        let expected = count_plan(&g, &plan);
        for cfg in [EngineConfig::default(), EngineConfig::without_stealing()] {
            for threads in [1, 2, 4] {
                let (total, traces) = count_plan_parallel_trace(&g, &plan, threads, &cfg);
                assert_eq!(total, expected, "{threads} threads under {cfg:?}");
                assert_eq!(traces.len(), threads);
                let mut roots: Vec<_> = traces
                    .iter()
                    .flatten()
                    .flat_map(MiningTask::roots)
                    .collect();
                roots.sort_unstable();
                let everything: Vec<_> = (0..g.vertex_count() as u32).collect();
                assert_eq!(roots, everything, "trace must partition the roots");
            }
        }
    }

    #[test]
    fn more_threads_than_vertices_is_fine() {
        let g = erdos_renyi(5, 6, 1);
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        assert_eq!(count_plan_parallel(&g, &plan, 64), count_plan(&g, &plan));
    }

    #[test]
    fn empty_graph_parallel_counts_zero() {
        let g = fingers_graph::GraphBuilder::new().vertex_count(0).build();
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        assert_eq!(count_plan_parallel(&g, &plan, 4), 0);
    }

    #[test]
    fn sum_over_root_tasks_partitions_work() {
        // Sum of task lengths = vertex count, for any thread count.
        for threads in [1, 2, 5] {
            let total = sum_over_root_tasks(97, threads, |t| t.len() as u64);
            assert_eq!(total, 97);
        }
    }

    #[test]
    fn tiny_mem_budget_aborts_all_or_nothing_and_gauge_returns_to_baseline() {
        let g = erdos_renyi(60, 240, 11);
        let plan = ExecutionPlan::compile(&Pattern::clique(4), Induced::Vertex);
        let global = MemGauge::new();
        for threads in [1, 2, 4] {
            // 1 byte: the first root boundary after any scratch retention
            // must trip it, for every thread count and scheduler.
            let cfg = EngineConfig::with_query_mem_budget(1);
            let err = try_count_plan_parallel_governed(
                &g,
                &plan,
                threads,
                &cfg,
                cfg.hub_set(&g),
                &CancelToken::new(),
                Some(&global),
            )
            .expect_err("1-byte budget must abort");
            let (used, budget) = err.mem_budget().expect("typed budget error");
            assert!(used > budget, "{used} must exceed {budget}");
            assert_eq!(budget, 1);
            assert_eq!(
                global.bytes(),
                0,
                "aborted query must release everything it published"
            );
        }
        assert!(global.peak_bytes() > 0, "the abort metered real bytes");
    }

    #[test]
    fn generous_mem_budget_changes_nothing_and_meters_the_run() {
        let g = erdos_renyi(60, 240, 11);
        let plan = ExecutionPlan::compile(&Pattern::clique(4), Induced::Vertex);
        let expected = count_plan(&g, &plan);
        let global = MemGauge::new();
        for threads in [1, 4] {
            let cfg = EngineConfig::with_query_mem_budget(64 << 20);
            let total = try_count_plan_parallel_governed(
                &g,
                &plan,
                threads,
                &cfg,
                cfg.hub_set(&g),
                &CancelToken::new(),
                Some(&global),
            )
            .expect("generous budget never aborts");
            assert_eq!(total, expected, "{threads} threads");
            assert_eq!(global.bytes(), 0, "gauge back to baseline after the run");
        }
        assert!(
            global.peak_bytes() > 0,
            "a bitmap-tier clique count retains metered scratch"
        );
    }

    #[test]
    fn ungoverned_shared_entry_is_unchanged() {
        let g = erdos_renyi(40, 150, 3);
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        let cfg = EngineConfig::default();
        assert_eq!(
            try_count_plan_parallel_shared(
                &g,
                &plan,
                4,
                &cfg,
                cfg.hub_set(&g),
                &CancelToken::new()
            )
            .expect("no governance, no abort"),
            count_plan(&g, &plan),
        );
    }

    #[test]
    fn try_count_matches_infallible_on_success() {
        let g = erdos_renyi(60, 240, 11);
        for p in [Pattern::triangle(), Pattern::clique(4)] {
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            let expected = count_plan(&g, &plan);
            for threads in [1, 2, 4] {
                assert_eq!(
                    try_count_plan_parallel(&g, &plan, threads).expect("no panic"),
                    expected,
                    "{p} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn try_count_multi_matches_sequential() {
        let g = erdos_renyi(40, 150, 3);
        for b in [Benchmark::Mc3, Benchmark::Tc] {
            let seq = crate::count_benchmark(&g, b);
            assert_eq!(
                try_count_benchmark_parallel(&g, b, 4).expect("no panic"),
                seq,
                "{b}"
            );
        }
    }

    #[test]
    fn isolated_scaffold_reports_failed_partitions_and_survives() {
        // Panic in the task containing root 50; every other task still runs
        // and the process survives at every thread count.
        for threads in [1, 2, 4] {
            let err = try_sum_over_root_tasks(97, threads, |t| {
                assert!(!t.roots().any(|r| r == 50), "injected failure");
                t.len() as u64
            })
            .expect_err("one task must fail");
            let failures = err.failed_partitions();
            assert_eq!(failures.len(), 1, "{threads} threads");
            let task = &failures[0].task;
            assert!(task.start <= 50 && 50 < task.end, "{task:?}");
            assert!(failures[0].message.contains("injected failure"));
            assert!(err.to_string().contains("1 mining task panicked"));
        }
    }

    #[test]
    fn isolated_scaffold_collects_every_failure() {
        // Three poisoned roots in distinct partitions → three failures, in
        // ascending root order (a steal schedule has no global claim order).
        let poisoned = [5u32, 40, 90];
        let err = try_sum_over_root_tasks(97, 2, |t| {
            if t.roots().any(|r| poisoned.contains(&r)) {
                panic!("poisoned root in [{}, {})", t.start, t.end);
            }
            t.len() as u64
        })
        .expect_err("three tasks must fail");
        let failures = err.failed_partitions();
        assert_eq!(failures.len(), 3, "{failures:?}");
        for w in failures.windows(2) {
            assert!(
                w[0].task.start < w[1].task.start,
                "root order: {failures:?}"
            );
        }
    }

    #[test]
    fn isolated_scaffold_succeeds_without_failures() {
        for threads in [1, 3] {
            let total = try_sum_over_root_tasks(97, threads, |t| t.len() as u64);
            assert_eq!(total.expect("no panics"), 97);
        }
    }

    #[test]
    fn shared_entry_with_live_token_is_bit_identical() {
        let g = erdos_renyi(60, 240, 11);
        let cfg = EngineConfig::default();
        for p in [Pattern::triangle(), Pattern::clique(4)] {
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            let expected = count_plan(&g, &plan);
            for threads in [1, 2, 4] {
                let got = try_count_plan_parallel_shared(
                    &g,
                    &plan,
                    threads,
                    &cfg,
                    cfg.hub_set(&g),
                    &CancelToken::new(),
                )
                .expect("live token must not cancel");
                assert_eq!(got, expected, "{p} at {threads} threads");
            }
        }
    }

    #[test]
    fn pre_cancelled_token_yields_cancelled_not_partial() {
        let g = erdos_renyi(60, 240, 11);
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        let cfg = EngineConfig::default();
        for threads in [1, 4] {
            let cancel = CancelToken::new();
            cancel.cancel();
            let err = try_count_plan_parallel_shared(&g, &plan, threads, &cfg, None, &cancel)
                .expect_err("cancelled before any task ran");
            assert_eq!(err.cancel_kind(), Some(CancelKind::Explicit), "{err}");
            assert!(err.failed_partitions().is_empty());
        }
    }

    #[test]
    fn expired_deadline_yields_deadline_kind() {
        let g = erdos_renyi(40, 150, 3);
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        let cancel = CancelToken::with_deadline(std::time::Duration::from_millis(0));
        let err =
            try_count_plan_parallel_shared(&g, &plan, 2, &EngineConfig::default(), None, &cancel)
                .expect_err("deadline already passed");
        assert_eq!(err.cancel_kind(), Some(CancelKind::Deadline));
        assert!(err.to_string().contains("deadline"), "{err}");
    }

    #[test]
    fn mid_run_cancel_stops_workers_and_discards_counts() {
        // A timer thread cancels while workers grind a slow 5-clique count;
        // the run must return Cancelled (never a partial count) and every
        // scoped worker is joined before the entry point returns, proving
        // the pool is reclaimed.
        let g = fingers_graph::gen::chung_lu_power_law(&fingers_graph::gen::ChungLuConfig::new(
            3_000, 36_000, 7,
        ));
        let plan = ExecutionPlan::compile(&Pattern::clique(5), Induced::Vertex);
        let cancel = CancelToken::new();
        let canceller = {
            let token = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.cancel();
            })
        };
        let res =
            try_count_plan_parallel_shared(&g, &plan, 4, &EngineConfig::default(), None, &cancel);
        canceller.join().expect("canceller thread");
        match res {
            Err(e) => assert_eq!(e.cancel_kind(), Some(CancelKind::Explicit), "{e}"),
            // If the machine is fast enough to finish in <20ms the count
            // must be the full, correct one — never something in between.
            Ok(n) => assert_eq!(n, count_plan(&g, &plan)),
        }
    }

    #[test]
    fn cancellable_scaffold_cancels_and_succeeds() {
        let cancel = CancelToken::new();
        for threads in [1, 3] {
            let total =
                try_sum_over_root_tasks_cancellable(97, threads, &cancel, |t| t.len() as u64);
            assert_eq!(total.expect("live token"), 97);
        }
        cancel.cancel();
        let err = try_sum_over_root_tasks_cancellable(97, 2, &cancel, |t| t.len() as u64)
            .expect_err("cancelled");
        assert_eq!(err.cancel_kind(), Some(CancelKind::Explicit));
    }

    #[test]
    fn shared_entry_rejects_unsound_plan_before_running() {
        let g = erdos_renyi(10, 20, 1);
        let sound = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        let unsound = fingers_verify::PlanMutation::DropInit
            .apply(&sound)
            .expect("drop-init applies to the triangle plan");
        let err = try_count_plan_parallel_shared(
            &g,
            &unsound,
            2,
            &EngineConfig::default(),
            None,
            &CancelToken::new(),
        )
        .expect_err("unsound plan must be rejected");
        assert!(matches!(err, EngineError::InvalidPlan { .. }), "{err}");
    }
}
