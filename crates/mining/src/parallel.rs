//! Root-partitioned parallel mining over [`PlanMiner`] workers.
//!
//! Level-0 DFS trees are independent, so the vertex range is split into
//! more [`MiningTask`]s than workers and workers claim tasks from a shared
//! atomic cursor (dynamic load balancing — a task holding a hub vertex
//! does not serialize the run). Each worker owns one [`PlanMiner`] (and
//! therefore one scratch arena) for its whole lifetime, and reduces into a
//! private `u64`. The final reduction is a sum of per-worker counts:
//! addition over `u64` is commutative and associative, so the result is
//! **bit-identical** to the sequential count regardless of scheduling —
//! the determinism tests assert exactly this.

use crate::config::EngineConfig;
use crate::executor::{count_plan_with, MineOutcome, PlanMiner};
use crate::sink::{CountSink, Sink};
use crate::task::MiningTask;
use fingers_graph::CsrGraph;
use fingers_pattern::benchmarks::Benchmark;
use fingers_pattern::{ExecutionPlan, MultiPlan};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tasks created per worker: oversubscription for dynamic load balance.
const TASKS_PER_WORKER: usize = 8;

/// Counts embeddings of `plan` in `graph` using `threads` workers, with the
/// default [`EngineConfig`].
///
/// Deterministic: returns exactly [`crate::count_plan`]'s value for every
/// thread count (the reduction is an order-independent `u64` sum).
/// `threads == 0` is treated as 1.
///
/// # Panics
///
/// Re-raises any panic from a worker thread (none occur for plans produced
/// by the compiler; see the invariants documented on [`PlanMiner`]).
pub fn count_plan_parallel(graph: &CsrGraph, plan: &ExecutionPlan, threads: usize) -> u64 {
    count_plan_parallel_with(graph, plan, threads, &EngineConfig::default())
}

/// Counts embeddings of `plan` using `threads` workers under an explicit
/// engine config.
///
/// The hub set is identified once here and shared (`Arc`) across workers;
/// each worker still owns its private bitmap cache, so the hot path stays
/// synchronization-free. Counts are identical for every config and thread
/// count.
pub fn count_plan_parallel_with(
    graph: &CsrGraph,
    plan: &ExecutionPlan,
    threads: usize,
    config: &EngineConfig,
) -> u64 {
    let threads = effective_threads(threads, graph.vertex_count());
    if threads <= 1 {
        return count_plan_with(graph, plan, config);
    }
    let hubs = config.hub_set(graph);
    let tasks = MiningTask::partition(graph.vertex_count(), threads * TASKS_PER_WORKER);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut miner =
                        PlanMiner::with_hubs(graph, plan, hubs.clone(), config.bitmap_cache_slots);
                    let mut sink = CountSink::default();
                    while let Some(task) = tasks.get(cursor.fetch_add(1, Ordering::Relaxed)) {
                        miner.run(task.clone(), &mut sink);
                    }
                    sink.count
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("mining worker panicked"))
            .sum()
    })
}

/// Counts every pattern of a multi-plan with `threads` workers per plan.
///
/// Per-pattern counts equal [`crate::count_multi`]'s exactly.
pub fn count_multi_parallel(graph: &CsrGraph, multi: &MultiPlan, threads: usize) -> MineOutcome {
    count_multi_parallel_with(graph, multi, threads, &EngineConfig::default())
}

/// Counts every pattern of a multi-plan with `threads` workers per plan
/// under an explicit engine config.
pub fn count_multi_parallel_with(
    graph: &CsrGraph,
    multi: &MultiPlan,
    threads: usize,
    config: &EngineConfig,
) -> MineOutcome {
    MineOutcome {
        per_pattern: multi
            .plans()
            .iter()
            .map(|p| count_plan_parallel_with(graph, p, threads, config))
            .collect(),
    }
}

/// Counts one of the paper's benchmark workloads with `threads` workers.
pub fn count_benchmark_parallel(
    graph: &CsrGraph,
    benchmark: Benchmark,
    threads: usize,
) -> MineOutcome {
    count_multi_parallel(graph, &benchmark.plan(), threads)
}

/// Counts a benchmark workload with `threads` workers under an explicit
/// engine config.
pub fn count_benchmark_parallel_with(
    graph: &CsrGraph,
    benchmark: Benchmark,
    threads: usize,
    config: &EngineConfig,
) -> MineOutcome {
    count_multi_parallel_with(graph, &benchmark.plan(), threads, config)
}

/// Runs `worker` once per claimed root-range task on each of `threads`
/// scoped threads, summing the returned counts. The generic scaffold the
/// brute-force and ESU oracles reuse for their root-partitioned variants.
///
/// `worker(task)` must be a pure function of the task (plus captured shared
/// state) for the sum to be schedule-independent.
///
/// # Panics
///
/// Re-raises any panic from `worker`.
pub fn sum_over_root_tasks<W>(vertex_count: usize, threads: usize, worker: W) -> u64
where
    W: Fn(&MiningTask) -> u64 + Sync,
{
    let threads = effective_threads(threads, vertex_count);
    let tasks = MiningTask::partition(vertex_count, threads.max(1) * TASKS_PER_WORKER);
    if threads <= 1 {
        return tasks.iter().map(&worker).sum();
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = 0u64;
                    while let Some(task) = tasks.get(cursor.fetch_add(1, Ordering::Relaxed)) {
                        local += worker(task);
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("oracle worker panicked"))
            .sum()
    })
}

/// Clamps a requested thread count to something useful: at least 1, and no
/// more than the number of roots (extra workers would only spin on an empty
/// task queue).
fn effective_threads(requested: usize, vertex_count: usize) -> usize {
    requested.max(1).min(vertex_count.max(1))
}

/// Mines `task` with a fresh sink and returns it — convenience for callers
/// driving [`PlanMiner`] task-by-task (bench harness, tests).
pub fn run_task<S: Sink + Default>(miner: &mut PlanMiner<'_, '_>, task: MiningTask) -> S {
    let mut sink = S::default();
    miner.run(task, &mut sink);
    sink
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_plan;
    use fingers_graph::gen::erdos_renyi;
    use fingers_pattern::{ExecutionPlan, Induced, Pattern};

    #[test]
    fn parallel_equals_sequential_for_every_thread_count() {
        let g = erdos_renyi(60, 240, 11);
        for p in [
            Pattern::triangle(),
            Pattern::four_cycle(),
            Pattern::clique(4),
        ] {
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            let expected = count_plan(&g, &plan);
            for threads in [0, 1, 2, 3, 4, 8] {
                assert_eq!(
                    count_plan_parallel(&g, &plan, threads),
                    expected,
                    "{p} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn multi_plan_parallel_matches_sequential() {
        let g = erdos_renyi(40, 150, 3);
        for b in [Benchmark::Mc3, Benchmark::Tc] {
            let seq = crate::count_benchmark(&g, b);
            assert_eq!(count_benchmark_parallel(&g, b, 4), seq, "{b}");
        }
    }

    #[test]
    fn parallel_configs_agree_with_sequential_baseline() {
        // Bitmap on/off × thread counts all land on the same counts.
        let g = erdos_renyi(50, 300, 29);
        let plan = ExecutionPlan::compile(&Pattern::clique(4), Induced::Vertex);
        let expected = count_plan_with(&g, &plan, &EngineConfig::without_bitmap());
        for cfg in [EngineConfig::without_bitmap(), EngineConfig::default()] {
            for threads in [1, 2, 4] {
                assert_eq!(
                    count_plan_parallel_with(&g, &plan, threads, &cfg),
                    expected,
                    "{threads} threads under {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_vertices_is_fine() {
        let g = erdos_renyi(5, 6, 1);
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        assert_eq!(count_plan_parallel(&g, &plan, 64), count_plan(&g, &plan));
    }

    #[test]
    fn empty_graph_parallel_counts_zero() {
        let g = fingers_graph::GraphBuilder::new().vertex_count(0).build();
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        assert_eq!(count_plan_parallel(&g, &plan, 4), 0);
    }

    #[test]
    fn sum_over_root_tasks_partitions_work() {
        // Sum of task lengths = vertex count, for any thread count.
        for threads in [1, 2, 5] {
            let total = sum_over_root_tasks(97, threads, |t| t.len() as u64);
            assert_eq!(total, 97);
        }
    }
}
