//! Per-worker scratch memory for the mining engine.
//!
//! The plan interpreter materializes one candidate set per scheduled set
//! operation per DFS level. Allocating a fresh `Vec` for each of those —
//! once per partial embedding — dominated the seed executor's runtime on
//! allocation-heavy workloads. [`ScratchArena`] recycles those buffers: a
//! DFS unwind returns each buffer to the pool, and the next descent takes
//! it back (with its capacity intact), so steady-state mining performs no
//! per-embedding heap allocation. Tests assert this via [`ScratchArena::fresh_buffers`].
//!
//! [`BitmapCache`] extends the same no-per-embedding-allocation discipline
//! to the dense-bitmap kernel tier: a bounded LRU of hub-adjacency
//! bitmaps, owned by one worker, reused across tasks and DFS levels.
//! Backing word storage is recycled on eviction, so the number of bitmap
//! allocations is bounded by the cache capacity — never by the number of
//! embeddings or even the number of cache misses.

use fingers_graph::{hubs, CsrGraph, VertexId};
use fingers_setops::bitmap::NeighborBitmap;
use fingers_setops::Elem;

/// A pool of reusable candidate-set buffers owned by one mining worker.
///
/// Not shared across threads: each parallel worker owns its own arena, so
/// there is no synchronization on the hot path.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Vec<Elem>>,
    fresh: usize,
    /// Retained capacity of the pooled buffers, in bytes. Updated with
    /// plain arithmetic at take/recycle; exact whenever every buffer is
    /// back in the pool — i.e. at the root-task boundaries where the
    /// memory governor reads it (in-flight growth shows up at the next
    /// recycle).
    bytes: u64,
}

impl ScratchArena {
    /// An empty arena; buffers are created on demand and recycled forever.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool, creating one only if the pool
    /// is empty. Recycled buffers keep their capacity, so after warm-up no
    /// call allocates.
    pub fn take(&mut self) -> Vec<Elem> {
        match self.free.pop() {
            Some(mut buf) => {
                self.bytes = self
                    .bytes
                    .saturating_sub((buf.capacity() * std::mem::size_of::<Elem>()) as u64);
                buf.clear();
                buf
            }
            None => {
                self.fresh += 1;
                crate::chaos::maybe_fail_alloc("scratch arena buffer");
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<Elem>) {
        self.bytes += (buf.capacity() * std::mem::size_of::<Elem>()) as u64;
        self.free.push(buf);
    }

    /// How many buffers [`take`](Self::take) had to create because the pool
    /// was empty. Bounded by the plan's maximum number of simultaneously
    /// live sets (≈ total scheduled ops), *not* by the number of embeddings
    /// — the no-per-embedding-allocation property the engine guarantees.
    pub fn fresh_buffers(&self) -> usize {
        self.fresh
    }

    /// Buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Retained pooled capacity in bytes (see the field note: exact at
    /// root-task boundaries, where the memory governor polls it).
    pub fn footprint_bytes(&self) -> u64 {
        self.bytes
    }
}

/// One resident entry of a [`BitmapCache`].
#[derive(Debug)]
struct CacheSlot {
    vertex: VertexId,
    /// Logical timestamp of the last hit (monotone per-cache counter —
    /// deterministic, unlike wall-clock LRU).
    stamp: u64,
    bitmap: NeighborBitmap,
}

/// A bounded per-worker LRU cache of hub-adjacency bitmaps.
///
/// Not shared across threads (like [`ScratchArena`]): each parallel worker
/// owns one, so hits are plain field reads with no synchronization. The
/// cache is *lazy* — a hub's bitmap is only built the first time its
/// adjacency is actually used as a long operand — and eviction recycles
/// the word storage, so at most `capacity` bitmap allocations ever happen
/// regardless of how many hubs rotate through.
///
/// Cache state never affects results: the bitmap kernels are bit-identical
/// to the merge kernels, so hit/miss patterns (which do vary with task
/// scheduling) change only timing.
#[derive(Debug)]
pub struct BitmapCache {
    slots: Vec<CacheSlot>,
    capacity: usize,
    clock: u64,
    hits: u64,
    builds: u64,
    fresh: usize,
    free: Vec<NeighborBitmap>,
    /// Dense vertex → slot map (`slot + 1`; 0 = not resident), lazily sized
    /// to the graph's vertex count. Makes the hit path — the one taken once
    /// per dispatched set operation — O(1) instead of a slot scan, so large
    /// caches cost no more per hit than small ones.
    index: Vec<u32>,
    /// Heap bytes retained by the cache: resident + recycled bitmap word
    /// storage plus the residency index. Charged when storage is freshly
    /// allocated (eviction recycles storage, so nothing changes hands) —
    /// cheap and exact, because bitmap sizes are fixed by the universe.
    bytes: u64,
}

impl BitmapCache {
    /// A cache holding at most `capacity` resident bitmaps (clamped to at
    /// least 1 — a zero-slot cache could satisfy no request).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            builds: 0,
            fresh: 0,
            free: Vec::new(),
            index: Vec::new(),
            bytes: 0,
        }
    }

    /// Returns the dense bitmap of `N(v)`, building (and caching) it on
    /// first use. On a full cache the least-recently-used slot is evicted
    /// and its storage reused for the new bitmap. Hits are O(1); misses pay
    /// an O(capacity) LRU scan plus the O(universe/64) rebuild — rare after
    /// warm-up because hub working sets are small and stable.
    pub fn get_or_build(&mut self, graph: &CsrGraph, v: VertexId) -> &NeighborBitmap {
        self.clock += 1;
        if self.index.len() < graph.vertex_count() {
            self.bytes +=
                ((graph.vertex_count() - self.index.len()) * std::mem::size_of::<u32>()) as u64;
            self.index.resize(graph.vertex_count(), 0);
        }
        let mapped = self.index[v as usize];
        if mapped != 0 {
            let i = (mapped - 1) as usize;
            self.hits += 1;
            self.slots[i].stamp = self.clock;
            return &self.slots[i].bitmap;
        }
        self.builds += 1;
        if self.slots.len() == self.capacity {
            // §11: this branch requires slots.len() == capacity, and a
            // zero-capacity cache never reaches it (get() short-circuits),
            // so the min is over a non-empty set; None is a cache bug.
            #[allow(clippy::expect_used)] // §11: justified above
            let lru = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("capacity >= 1");
            let evicted = self.slots.swap_remove(lru);
            self.index[evicted.vertex as usize] = 0;
            if let Some(moved) = self.slots.get(lru) {
                self.index[moved.vertex as usize] = lru as u32 + 1;
            }
            self.free.push(evicted.bitmap);
        }
        let mut bitmap = match self.free.pop() {
            Some(b) => b,
            None => {
                self.fresh += 1;
                crate::chaos::maybe_fail_alloc("hub-adjacency bitmap");
                self.bytes += (NeighborBitmap::words_for(graph.vertex_count())
                    * std::mem::size_of::<u64>()) as u64;
                NeighborBitmap::new(graph.vertex_count())
            }
        };
        hubs::refill_neighbor_bitmap(graph, v, &mut bitmap);
        self.slots.push(CacheSlot {
            vertex: v,
            stamp: self.clock,
            bitmap,
        });
        self.index[v as usize] = self.slots.len() as u32;
        // §11: the slot was pushed two statements above, on this same
        // &mut self borrow; `last()` returning None is impossible.
        #[allow(clippy::expect_used)]
        {
            &self.slots.last().expect("just pushed").bitmap
        }
    }

    /// Lookups served from a resident bitmap.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Bitmap (re)builds — cache misses, whether or not they allocated.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Backing-storage allocations. Bounded by the cache capacity (evicted
    /// storage is recycled), *not* by misses or embeddings — the bitmap
    /// half of the engine's no-per-embedding-allocation property.
    pub fn fresh_bitmaps(&self) -> usize {
        self.fresh
    }

    /// Bitmaps currently resident.
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Heap bytes retained by the cache (bitmap storage, resident or
    /// recycled, plus the residency index).
    pub fn footprint_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingers_graph::GraphBuilder;

    #[test]
    fn recycled_buffers_keep_capacity_and_are_cleared() {
        let mut arena = ScratchArena::new();
        let mut a = arena.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        arena.recycle(a);
        let b = arena.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(arena.fresh_buffers(), 1);
    }

    #[test]
    fn fresh_count_tracks_pool_misses_only() {
        let mut arena = ScratchArena::new();
        let a = arena.take();
        let b = arena.take();
        assert_eq!(arena.fresh_buffers(), 2);
        arena.recycle(a);
        arena.recycle(b);
        for _ in 0..100 {
            let buf = arena.take();
            arena.recycle(buf);
        }
        assert_eq!(arena.fresh_buffers(), 2, "reuse must not create buffers");
        assert_eq!(arena.pooled(), 2);
    }

    fn path_graph(n: u32) -> CsrGraph {
        GraphBuilder::new()
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build()
    }

    #[test]
    fn cache_hits_after_first_build() {
        let g = path_graph(10);
        let mut cache = BitmapCache::new(4);
        let first: Vec<_> = cache.get_or_build(&g, 3).iter_ones().collect();
        assert_eq!(first, g.neighbors(3));
        assert_eq!((cache.builds(), cache.hits()), (1, 0));
        let again: Vec<_> = cache.get_or_build(&g, 3).iter_ones().collect();
        assert_eq!(again, first);
        assert_eq!((cache.builds(), cache.hits()), (1, 1));
        assert_eq!(cache.fresh_bitmaps(), 1);
        assert_eq!(cache.resident(), 1);
    }

    #[test]
    fn eviction_recycles_storage_and_is_lru() {
        let g = path_graph(12);
        let mut cache = BitmapCache::new(2);
        cache.get_or_build(&g, 1);
        cache.get_or_build(&g, 2);
        cache.get_or_build(&g, 1); // refresh 1 → LRU is now 2
        cache.get_or_build(&g, 3); // evicts 2, reuses its storage
        assert_eq!(cache.fresh_bitmaps(), 2, "third build must reuse storage");
        assert_eq!(cache.resident(), 2);
        // 1 was refreshed, so it must still be resident (a hit, not a build).
        let builds = cache.builds();
        cache.get_or_build(&g, 1);
        assert_eq!(cache.builds(), builds, "LRU evicted the wrong entry");
        // 2 was evicted: asking again rebuilds, but still allocates nothing.
        cache.get_or_build(&g, 2);
        assert_eq!(cache.builds(), builds + 1);
        assert_eq!(cache.fresh_bitmaps(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let g = path_graph(4);
        let mut cache = BitmapCache::new(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.get_or_build(&g, 1).count_ones(), 2);
    }

    #[test]
    fn allocations_bounded_by_capacity_under_churn() {
        let g = path_graph(40);
        let mut cache = BitmapCache::new(3);
        for round in 0..5u32 {
            for v in 0..30u32 {
                cache.get_or_build(&g, (v + round) % 30);
            }
        }
        assert_eq!(cache.fresh_bitmaps(), 3, "churn must not allocate");
        assert_eq!(cache.resident(), 3);
    }
}
