//! Per-worker scratch memory for the mining engine.
//!
//! The plan interpreter materializes one candidate set per scheduled set
//! operation per DFS level. Allocating a fresh `Vec` for each of those —
//! once per partial embedding — dominated the seed executor's runtime on
//! allocation-heavy workloads. [`ScratchArena`] recycles those buffers: a
//! DFS unwind returns each buffer to the pool, and the next descent takes
//! it back (with its capacity intact), so steady-state mining performs no
//! per-embedding heap allocation. Tests assert this via [`ScratchArena::fresh_buffers`].

use fingers_setops::Elem;

/// A pool of reusable candidate-set buffers owned by one mining worker.
///
/// Not shared across threads: each parallel worker owns its own arena, so
/// there is no synchronization on the hot path.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Vec<Elem>>,
    fresh: usize,
}

impl ScratchArena {
    /// An empty arena; buffers are created on demand and recycled forever.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool, creating one only if the pool
    /// is empty. Recycled buffers keep their capacity, so after warm-up no
    /// call allocates.
    pub fn take(&mut self) -> Vec<Elem> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => {
                self.fresh += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<Elem>) {
        self.free.push(buf);
    }

    /// How many buffers [`take`](Self::take) had to create because the pool
    /// was empty. Bounded by the plan's maximum number of simultaneously
    /// live sets (≈ total scheduled ops), *not* by the number of embeddings
    /// — the no-per-embedding-allocation property the engine guarantees.
    pub fn fresh_buffers(&self) -> usize {
        self.fresh
    }

    /// Buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffers_keep_capacity_and_are_cleared() {
        let mut arena = ScratchArena::new();
        let mut a = arena.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        arena.recycle(a);
        let b = arena.take();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(arena.fresh_buffers(), 1);
    }

    #[test]
    fn fresh_count_tracks_pool_misses_only() {
        let mut arena = ScratchArena::new();
        let a = arena.take();
        let b = arena.take();
        assert_eq!(arena.fresh_buffers(), 2);
        arena.recycle(a);
        arena.recycle(b);
        for _ in 0..100 {
            let buf = arena.take();
            arena.recycle(buf);
        }
        assert_eq!(arena.fresh_buffers(), 2, "reuse must not create buffers");
        assert_eq!(arena.pooled(), 2);
    }
}
