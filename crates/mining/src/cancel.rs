//! Cooperative cancellation for long-running mining work.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a query's
//! owner (a service scheduler, a watchdog, a signal handler) and the
//! engine's workers. Workers poll it at **root-task boundaries** — between
//! level-0 DFS roots and between claimed [`crate::MiningTask`]s — never per
//! embedding, so the steady-state hot path keeps its zero-overhead
//! property: a poll is one relaxed atomic load, plus one monotonic-clock
//! read when a deadline is armed.
//!
//! Cancellation is all-or-nothing: a run that observes its token cancelled
//! discards every partial count and returns
//! [`crate::EngineError::Cancelled`]. A partial count is indistinguishable
//! from a correct smaller count, so leaking one would silently corrupt
//! results; the engine never does.

use fingers_conc::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// [`CancelToken::cancel`] was called (client cancel, shutdown, …).
    Explicit,
    /// The token's armed deadline passed.
    Deadline,
}

impl CancelKind {
    /// Stable wire word (`"cancelled"` / `"deadline"`), used by the service
    /// protocol and the CLI's JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelKind::Explicit => "cancelled",
            CancelKind::Deadline => "deadline",
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A clonable cancellation handle checked cooperatively by mining workers.
///
/// Clones share one flag: cancelling any clone cancels them all. A token
/// without a deadline never cancels on its own, so the default token makes
/// every cancellable API behave exactly like its infallible counterpart.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally cancels itself once `budget` elapses.
    pub fn with_deadline(budget: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + budget)
    }

    /// A token that additionally cancels itself at `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        // ord: relaxed(latch-only flag; cancellation is all-or-nothing, so no data is published under it)
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token is cancelled (explicitly or by deadline). The
    /// poll workers run at root-task boundaries.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.kind().is_some()
    }

    /// Why the token is cancelled, or `None` while it is live. An explicit
    /// cancel takes precedence over a passed deadline (the owner asked
    /// first).
    #[inline]
    pub fn kind(&self) -> Option<CancelKind> {
        // ord: relaxed(poll may lag a cancel by a task boundary; partial results are discarded anyway)
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(CancelKind::Explicit);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(CancelKind::Deadline),
            _ => None,
        }
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_cancel_is_shared() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.kind(), None);
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.kind(), Some(CancelKind::Explicit));
    }

    #[test]
    fn deadline_token_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // A zero budget is already expired by the time we poll.
        assert!(t.is_cancelled());
        assert_eq!(t.kind(), Some(CancelKind::Deadline));

        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline().is_some());
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        t.cancel();
        assert_eq!(t.kind(), Some(CancelKind::Explicit));
    }

    #[test]
    fn wire_words() {
        assert_eq!(CancelKind::Explicit.as_str(), "cancelled");
        assert_eq!(CancelKind::Deadline.as_str(), "deadline");
    }
}
