//! Pattern-oblivious mining (the Arabesque/Gramer paradigm).
//!
//! Early graph mining systems were *pattern-oblivious* (paper Section 2.1):
//! they enumerate all connected size-`k` subgraphs and run an isomorphism
//! check at the leaves, instead of compiling the pattern into set-operation
//! schedules. The paper notes this paradigm is algorithmically inferior —
//! "the huge performance gap compared to pattern-aware algorithms could not
//! be closed by hardware acceleration" (Gramer vs AutoMine).
//!
//! This module implements that baseline with the ESU (FANMOD) enumeration
//! algorithm, which visits every connected vertex-induced subgraph exactly
//! once. It serves two roles: an *independent second oracle* for the
//! pattern-aware stack, and the reference point for the pattern-aware vs
//! pattern-oblivious gap measured in the benches.

use crate::parallel::sum_over_root_tasks;
use fingers_graph::{CsrGraph, VertexId};
use fingers_pattern::Pattern;

/// Invokes `visitor` with every connected vertex-induced subgraph of
/// exactly `k` vertices, each visited once (ESU / FANMOD enumeration).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn for_each_connected_subgraph<F: FnMut(&[VertexId])>(
    graph: &CsrGraph,
    k: usize,
    visitor: &mut F,
) {
    assert!(k > 0, "subgraphs need at least one vertex");
    let mut sub = Vec::with_capacity(k);
    for v in graph.vertices() {
        sub.push(v);
        if k == 1 {
            visitor(&sub);
        } else {
            let ext: Vec<VertexId> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| u > v)
                .collect();
            extend(graph, k, v, &mut sub, ext, visitor);
        }
        sub.pop();
    }
}

fn extend<F: FnMut(&[VertexId])>(
    graph: &CsrGraph,
    k: usize,
    root: VertexId,
    sub: &mut Vec<VertexId>,
    mut ext: Vec<VertexId>,
    visitor: &mut F,
) {
    while let Some(w) = ext.pop() {
        sub.push(w);
        if sub.len() == k {
            visitor(sub);
        } else {
            // Extension set: current candidates plus w's *exclusive*
            // neighbors — those larger than the root and not adjacent to
            // (or part of) the current subgraph.
            let mut next_ext = ext.clone();
            for &u in graph.neighbors(w) {
                if u > root
                    && !sub.contains(&u)
                    && !next_ext.contains(&u)
                    && !sub[..sub.len() - 1].iter().any(|&s| graph.has_edge(s, u))
                {
                    next_ext.push(u);
                }
            }
            extend(graph, k, root, sub, next_ext, visitor);
        }
        sub.pop();
    }
}

/// Whether the vertex-induced subgraph of `graph` on `vertices` is
/// isomorphic to `pattern` (exhaustive permutation check with degree
/// pruning — patterns are small).
pub fn induced_isomorphic(graph: &CsrGraph, vertices: &[VertexId], pattern: &Pattern) -> bool {
    let k = pattern.size();
    if vertices.len() != k {
        return false;
    }
    // Degree-multiset precheck within the induced subgraph.
    let mut sub_degrees: Vec<usize> = vertices
        .iter()
        .map(|&v| {
            vertices
                .iter()
                .filter(|&&u| u != v && graph.has_edge(u, v))
                .count()
        })
        .collect();
    let mut pat_degrees: Vec<usize> = (0..k).map(|v| pattern.degree(v)).collect();
    sub_degrees.sort_unstable();
    pat_degrees.sort_unstable();
    if sub_degrees != pat_degrees {
        return false;
    }
    // Backtracking match: pattern vertex i ↦ vertices[perm[i]].
    let mut perm = vec![usize::MAX; k];
    let mut used = vec![false; k];
    fn matches(
        graph: &CsrGraph,
        vertices: &[VertexId],
        pattern: &Pattern,
        perm: &mut [usize],
        used: &mut [bool],
        i: usize,
    ) -> bool {
        let k = pattern.size();
        if i == k {
            return true;
        }
        for cand in 0..k {
            if used[cand] {
                continue;
            }
            let ok = (0..i).all(|j| {
                pattern.are_adjacent(i, j) == graph.has_edge(vertices[cand], vertices[perm[j]])
            });
            if ok {
                perm[i] = cand;
                used[cand] = true;
                if matches(graph, vertices, pattern, perm, used, i + 1) {
                    return true;
                }
                used[cand] = false;
                perm[i] = usize::MAX;
            }
        }
        false
    }
    matches(graph, vertices, pattern, &mut perm, &mut used, 0)
}

/// Counts vertex-induced embeddings of `pattern` pattern-obliviously:
/// enumerate every connected `k`-subgraph, isomorphism-check each.
///
/// Equals the pattern-aware count (each unordered occurrence once) — the
/// integration tests assert this — but with the exponential enumeration
/// cost the paper's Section 2.1 describes.
pub fn count_embeddings_oblivious(graph: &CsrGraph, pattern: &Pattern) -> u64 {
    let mut count = 0u64;
    for_each_connected_subgraph(graph, pattern.size(), &mut |vertices| {
        if induced_isomorphic(graph, vertices, pattern) {
            count += 1;
        }
    });
    count
}

/// Root-partitioned [`count_embeddings_oblivious`]: ESU's root loop is the
/// natural parallel seam — the enumeration rooted at `v` only ever touches
/// vertices `> v`, independently of other roots. Each root-range task is
/// enumerated by one of `threads` scoped workers; the `u64`-sum reduction
/// makes the count identical to the sequential oracle at any thread count.
pub fn count_embeddings_oblivious_parallel(
    graph: &CsrGraph,
    pattern: &Pattern,
    threads: usize,
) -> u64 {
    let k = pattern.size();
    sum_over_root_tasks(graph.vertex_count(), threads, |task| {
        let mut count = 0u64;
        let mut sub = Vec::with_capacity(k);
        for v in task.roots() {
            sub.push(v);
            if k == 1 {
                if induced_isomorphic(graph, &sub, pattern) {
                    count += 1;
                }
            } else {
                let ext: Vec<VertexId> = graph
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| u > v)
                    .collect();
                extend(
                    graph,
                    k,
                    v,
                    &mut sub,
                    ext,
                    &mut |vertices: &[VertexId]| {
                        if induced_isomorphic(graph, vertices, pattern) {
                            count += 1;
                        }
                    },
                );
            }
            sub.pop();
        }
        count
    })
}

/// Counts every connected `k`-subgraph by isomorphism class, returning
/// `(class representative counts)` aligned with `patterns` — a full motif
/// census in one enumeration pass.
pub fn motif_census_oblivious(graph: &CsrGraph, patterns: &[Pattern]) -> Vec<u64> {
    let mut counts = vec![0u64; patterns.len()];
    let sizes: Vec<usize> = patterns.iter().map(Pattern::size).collect();
    let distinct_sizes: std::collections::BTreeSet<usize> = sizes.iter().copied().collect();
    for &k in &distinct_sizes {
        for_each_connected_subgraph(graph, k, &mut |vertices| {
            for (idx, p) in patterns.iter().enumerate() {
                if p.size() == k && induced_isomorphic(graph, vertices, p) {
                    counts[idx] += 1;
                    break; // classes are disjoint
                }
            }
        });
    }
    counts
}

/// Sanity helper: the number of connected `k`-subgraphs must equal the sum
/// over all isomorphism classes; exposed for tests and analyses.
pub fn connected_subgraph_count(graph: &CsrGraph, k: usize) -> u64 {
    let mut n = 0u64;
    for_each_connected_subgraph(graph, k, &mut |_| n += 1);
    n
}

/// The cost ratio the paper's Section 2.2 describes: isomorphism checks per
/// *matching* subgraph. High values mean the oblivious paradigm wastes most
/// of its work — exactly why pattern-aware mining wins.
pub fn wasted_check_ratio(graph: &CsrGraph, pattern: &Pattern) -> f64 {
    let total = connected_subgraph_count(graph, pattern.size());
    let matching = count_embeddings_oblivious(graph, pattern);
    if matching == 0 {
        total as f64
    } else {
        total as f64 / matching as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use fingers_graph::gen::erdos_renyi;
    use fingers_graph::GraphBuilder;
    use fingers_pattern::automorphisms;
    use fingers_pattern::Induced;

    #[test]
    fn subgraph_enumeration_counts_triads() {
        // Triangle graph: exactly one connected 3-subgraph.
        let tri = GraphBuilder::new().edges([(0, 1), (1, 2), (0, 2)]).build();
        assert_eq!(connected_subgraph_count(&tri, 3), 1);
        // Star with 3 leaves: C(3,2) wedges = 3 connected triads.
        let star = GraphBuilder::new().edges([(0, 1), (0, 2), (0, 3)]).build();
        assert_eq!(connected_subgraph_count(&star, 3), 3);
    }

    #[test]
    fn each_subgraph_visited_once_and_connected() {
        let g = erdos_renyi(18, 45, 2);
        let mut seen = std::collections::HashSet::new();
        for_each_connected_subgraph(&g, 4, &mut |vs| {
            let mut key = vs.to_vec();
            key.sort_unstable();
            assert!(seen.insert(key.clone()), "duplicate subgraph {key:?}");
            // Connectivity check.
            let mut reach = vec![key[0]];
            let mut frontier = vec![key[0]];
            while let Some(v) = frontier.pop() {
                for &u in &key {
                    if !reach.contains(&u) && g.has_edge(u, v) {
                        reach.push(u);
                        frontier.push(u);
                    }
                }
            }
            assert_eq!(reach.len(), key.len(), "disconnected subgraph {key:?}");
        });
        assert!(!seen.is_empty());
    }

    #[test]
    fn oblivious_counts_match_brute_force() {
        for seed in 0..3 {
            let g = erdos_renyi(14, 34, seed);
            for p in [
                Pattern::triangle(),
                Pattern::tailed_triangle(),
                Pattern::four_cycle(),
                Pattern::diamond(),
                Pattern::clique(4),
            ] {
                assert_eq!(
                    count_embeddings_oblivious(&g, &p),
                    brute::count_embeddings(&g, &p, Induced::Vertex),
                    "{p} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn parallel_esu_matches_sequential() {
        let g = erdos_renyi(16, 40, 8);
        for p in [Pattern::triangle(), Pattern::four_cycle(), Pattern::star(3)] {
            let expected = count_embeddings_oblivious(&g, &p);
            for threads in [1, 2, 4] {
                assert_eq!(
                    count_embeddings_oblivious_parallel(&g, &p, threads),
                    expected,
                    "{p} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn motif_census_is_a_partition() {
        // Every connected triad is a triangle or a wedge — no remainder.
        let g = erdos_renyi(25, 70, 7);
        let census = motif_census_oblivious(&g, &[Pattern::triangle(), Pattern::wedge()]);
        assert_eq!(census.iter().sum::<u64>(), connected_subgraph_count(&g, 3));
    }

    #[test]
    fn isomorphism_check_rejects_wrong_structures() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build();
        assert!(induced_isomorphic(&g, &[0, 1, 2], &Pattern::triangle()));
        assert!(!induced_isomorphic(&g, &[0, 1, 3], &Pattern::triangle()));
        assert!(induced_isomorphic(
            &g,
            &[0, 1, 2, 3],
            &Pattern::tailed_triangle()
        ));
        assert!(!induced_isomorphic(
            &g,
            &[0, 1, 2, 3],
            &Pattern::four_cycle()
        ));
        assert!(!induced_isomorphic(&g, &[0, 1], &Pattern::triangle()));
    }

    #[test]
    fn wasted_ratio_reflects_selectivity() {
        // In a sparse random graph most connected 4-subgraphs are trees,
        // so selective patterns (cliques) waste far more checks than
        // permissive ones.
        let g = erdos_renyi(40, 90, 5);
        let clique_ratio = wasted_check_ratio(&g, &Pattern::clique(4));
        let star_ratio = wasted_check_ratio(&g, &Pattern::star(3));
        assert!(clique_ratio >= star_ratio);
    }

    #[test]
    fn automorphism_free_counting() {
        // The oblivious count is per subgraph (unordered), independent of
        // |Aut|: K4 contains exactly 4 triangles and 1 four-clique.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
            }
        }
        let g = GraphBuilder::new().edges(edges).build();
        assert_eq!(count_embeddings_oblivious(&g, &Pattern::triangle()), 4);
        assert_eq!(count_embeddings_oblivious(&g, &Pattern::clique(4)), 1);
        // `automorphisms` is linked to keep the oracle honest about what
        // "once per subgraph" means.
        assert_eq!(automorphisms(&Pattern::clique(4)).len(), 24);
    }
}
