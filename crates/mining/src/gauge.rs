//! Memory accounting: cheap, relaxed-atomic byte gauges.
//!
//! The engine's scratch structures ([`crate::ScratchArena`],
//! [`crate::BitmapCache`], listing sinks) are bounded by *design* — the
//! no-per-embedding-allocation property — but nothing bounded them by
//! *bytes*: a hostile pattern over a large graph can legitimately retain
//! gigabytes of candidate-set capacity and OOM the whole process, the one
//! failure mode the §11 error policy cannot type. [`MemGauge`] makes the
//! footprint observable and enforceable:
//!
//! - each structure tracks its own retained bytes with plain (non-atomic)
//!   counters, costing nothing on the mining hot path;
//! - a worker *publishes* its footprint into a shared gauge only at
//!   root-task boundaries — the same cadence as cancellation polling — so
//!   the shared state is one relaxed `fetch_add` per level-0 root;
//! - gauges form a parent chain (query gauge → global daemon gauge), so
//!   one publish updates both the per-query and the process-wide totals.
//!
//! Accounting is *boundary-exact*: in-flight buffer growth becomes visible
//! when the buffer is recycled, and every buffer is recycled by the time a
//! root's DFS unwinds — precisely where budgets are checked. A
//! [`GaugeScope`] releases everything it published when dropped, so a
//! finished (or aborted) query always returns the shared gauge to its
//! prior baseline.

use fingers_conc::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared byte gauge. Cloning yields another handle to the same counter;
/// [`MemGauge::child`] creates a linked gauge whose charges propagate to
/// this one (the daemon uses a global parent gauge and one child per
/// query).
#[derive(Debug, Clone, Default)]
pub struct MemGauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    bytes: AtomicU64,
    peak: AtomicU64,
    parent: Option<MemGauge>,
}

impl MemGauge {
    /// A fresh gauge reading zero bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// A child gauge: every charge/release applied to the child is also
    /// applied to `self`, so the parent always reads the sum of its
    /// children plus its own direct charges.
    pub fn child(&self) -> MemGauge {
        MemGauge {
            inner: Arc::new(GaugeInner {
                bytes: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Current metered bytes.
    pub fn bytes(&self) -> u64 {
        // ord: relaxed(observability counter; callers join workers before treating the value as final)
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`MemGauge::bytes`]. Maintained with relaxed
    /// `fetch_max`, so concurrent publishes may under-report a transient
    /// peak by one publish — fine for the observability it exists for.
    pub fn peak_bytes(&self) -> u64 {
        // ord: relaxed(high-water mark is advisory observability)
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Adds `n` bytes to this gauge and every ancestor.
    pub fn charge(&self, n: u64) {
        if n == 0 {
            return;
        }
        // ord: relaxed(commutative counter arithmetic; no data is published under the gauge)
        let now = self.inner.bytes.fetch_add(n, Ordering::Relaxed) + n;
        // ord: relaxed(monotone max; transiently stale peaks are acceptable)
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
        if let Some(parent) = &self.inner.parent {
            parent.charge(n);
        }
    }

    /// Subtracts `n` bytes from this gauge and every ancestor, saturating
    /// at zero (a release can never make the gauge wrap; charges and
    /// releases are balanced by construction, so saturation only masks a
    /// caller bug rather than corrupting the daemon's view).
    pub fn release(&self, n: u64) {
        if n == 0 {
            return;
        }
        let _ = self
            .inner
            .bytes
            // ord: relaxed+relaxed(saturating counter decrement; no data is published under the gauge)
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_sub(n))
            });
        if let Some(parent) = &self.inner.parent {
            parent.release(n);
        }
    }
}

/// One worker's window onto a shared [`MemGauge`]: remembers how many
/// bytes it has published so far, republished as a delta at every
/// root-task boundary, and releases the remainder on drop so the gauge
/// returns to baseline no matter how the query ends (completion,
/// cancellation, budget abort, or panic-unwind of the owning miner).
#[derive(Debug)]
pub struct GaugeScope {
    gauge: MemGauge,
    published: u64,
    budget: Option<u64>,
}

impl GaugeScope {
    /// A scope publishing into `gauge`, enforcing `budget` (in bytes, over
    /// the whole gauge — for a per-query child gauge that is the query's
    /// combined footprint across all its workers) when given.
    pub fn new(gauge: MemGauge, budget: Option<u64>) -> Self {
        Self {
            gauge,
            published: 0,
            budget,
        }
    }

    /// Publishes the caller's current footprint (replacing what this scope
    /// published before) and checks the budget. Returns
    /// `Some((used, budget))` when the gauge — including every sibling
    /// scope publishing into it — now exceeds the budget.
    pub fn publish(&mut self, now: u64) -> Option<(u64, u64)> {
        if now > self.published {
            self.gauge.charge(now - self.published);
        } else {
            self.gauge.release(self.published - now);
        }
        self.published = now;
        let used = self.gauge.bytes();
        match self.budget {
            Some(budget) if used > budget => Some((used, budget)),
            _ => None,
        }
    }

    /// The gauge this scope publishes into.
    pub fn gauge(&self) -> &MemGauge {
        &self.gauge
    }
}

impl Drop for GaugeScope {
    fn drop(&mut self) {
        self.gauge.release(self.published);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_propagate_to_parent() {
        let global = MemGauge::new();
        let query = global.child();
        query.charge(1000);
        assert_eq!(query.bytes(), 1000);
        assert_eq!(global.bytes(), 1000);
        query.release(300);
        assert_eq!(query.bytes(), 700);
        assert_eq!(global.bytes(), 700);
        assert_eq!(global.peak_bytes(), 1000);
    }

    #[test]
    fn release_saturates_at_zero() {
        let g = MemGauge::new();
        g.charge(5);
        g.release(100);
        assert_eq!(g.bytes(), 0);
    }

    #[test]
    fn scope_publishes_deltas_and_releases_on_drop() {
        let global = MemGauge::new();
        let query = global.child();
        let mut scope = GaugeScope::new(query.clone(), None);
        assert_eq!(scope.publish(100), None);
        assert_eq!(global.bytes(), 100);
        assert_eq!(scope.publish(40), None, "shrinking footprint releases");
        assert_eq!(global.bytes(), 40);
        drop(scope);
        assert_eq!(query.bytes(), 0, "drop returns the gauge to baseline");
        assert_eq!(global.bytes(), 0);
    }

    #[test]
    fn scope_reports_budget_violations_across_siblings() {
        let query = MemGauge::new();
        let mut a = GaugeScope::new(query.clone(), Some(100));
        let mut b = GaugeScope::new(query.clone(), Some(100));
        assert_eq!(a.publish(60), None);
        // b's 60 bytes push the *shared* gauge past the budget.
        assert_eq!(b.publish(60), Some((120, 100)));
        // a sees the violation too at its next boundary.
        assert_eq!(a.publish(60), Some((120, 100)));
    }

    #[test]
    fn two_scopes_sum_into_one_gauge() {
        let query = MemGauge::new();
        let mut a = GaugeScope::new(query.clone(), None);
        let mut b = GaugeScope::new(query.clone(), None);
        a.publish(10);
        b.publish(20);
        assert_eq!(query.bytes(), 30);
        drop(a);
        assert_eq!(query.bytes(), 20);
        drop(b);
        assert_eq!(query.bytes(), 0);
    }
}
