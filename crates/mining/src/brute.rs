//! Brute-force embedding enumeration for validating the compiler.
//!
//! Counts *ordered* injective pattern maps by exhaustive backtracking and
//! divides by the automorphism count to get the canonical (unordered)
//! embedding count. Exponential — only for small graphs in tests, where it
//! cross-checks the plan compiler end to end (vertex order + schedules +
//! symmetry breaking).

use crate::parallel::sum_over_root_tasks;
use fingers_graph::{CsrGraph, VertexId};
use fingers_pattern::{automorphisms, Induced, Pattern};

/// Counts the embeddings of `pattern` in `graph` under `induced` semantics
/// by brute force, with each unordered occurrence counted once.
///
/// # Panics
///
/// Panics if the ordered count is not divisible by `|Aut(pattern)|`
/// (which would indicate a bug in the automorphism enumeration).
pub fn count_embeddings(graph: &CsrGraph, pattern: &Pattern, induced: Induced) -> u64 {
    let ordered = count_ordered_maps(graph, pattern, induced);
    let aut = automorphisms(pattern).len() as u64;
    assert_eq!(
        ordered % aut,
        0,
        "ordered count {ordered} not divisible by |Aut| = {aut}"
    );
    ordered / aut
}

/// Counts ordered injective maps `f : pattern → graph` such that pattern
/// edges map to graph edges and (for vertex-induced semantics) pattern
/// non-edges map to graph non-edges.
pub fn count_ordered_maps(graph: &CsrGraph, pattern: &Pattern, induced: Induced) -> u64 {
    let mut mapped: Vec<VertexId> = Vec::with_capacity(pattern.size());
    let mut count = 0u64;
    extend(graph, pattern, induced, &mut mapped, &mut count);
    count
}

/// Root-partitioned [`count_embeddings`]: the level-0 candidate loop is
/// split into root-range tasks executed by `threads` scoped workers. The
/// reduction is an order-independent `u64` sum, so the result is identical
/// to the sequential oracle for every thread count.
///
/// # Panics
///
/// Panics under the same divisibility invariant as [`count_embeddings`].
pub fn count_embeddings_parallel(
    graph: &CsrGraph,
    pattern: &Pattern,
    induced: Induced,
    threads: usize,
) -> u64 {
    let ordered = sum_over_root_tasks(graph.vertex_count(), threads, |task| {
        let mut mapped: Vec<VertexId> = Vec::with_capacity(pattern.size());
        let mut count = 0u64;
        for root in task.roots() {
            if pattern.size() == 0 {
                break;
            }
            mapped.push(root);
            extend(graph, pattern, induced, &mut mapped, &mut count);
            mapped.pop();
        }
        // A 0-vertex pattern has one (empty) map; only the sequential
        // entry point counts it, and no benchmark pattern is empty.
        count
    });
    let aut = automorphisms(pattern).len() as u64;
    assert_eq!(
        ordered % aut,
        0,
        "ordered count {ordered} not divisible by |Aut| = {aut}"
    );
    ordered / aut
}

fn extend(
    graph: &CsrGraph,
    pattern: &Pattern,
    induced: Induced,
    mapped: &mut Vec<VertexId>,
    count: &mut u64,
) {
    let v = mapped.len();
    if v == pattern.size() {
        *count += 1;
        return;
    }
    for cand in graph.vertices() {
        if mapped.contains(&cand) {
            continue;
        }
        let ok = (0..v).all(|w| {
            let need = pattern.are_adjacent(v, w);
            let have = graph.has_edge(cand, mapped[w]);
            match induced {
                Induced::Vertex => need == have,
                Induced::Edge => !need || have,
            }
        });
        if ok {
            mapped.push(cand);
            extend(graph, pattern, induced, mapped, count);
            mapped.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::count_plan;
    use fingers_graph::gen::erdos_renyi;
    use fingers_graph::GraphBuilder;
    use fingers_pattern::ExecutionPlan;

    #[test]
    fn triangle_in_k4() {
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .build();
        assert_eq!(
            count_embeddings(&g, &Pattern::triangle(), Induced::Vertex),
            4
        );
    }

    #[test]
    fn vertex_vs_edge_induced_wedge() {
        // Triangle graph: 0 vertex-induced wedges, 3 edge-induced wedges.
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (0, 2)]).build();
        assert_eq!(count_embeddings(&g, &Pattern::wedge(), Induced::Vertex), 0);
        assert_eq!(count_embeddings(&g, &Pattern::wedge(), Induced::Edge), 3);
    }

    /// The load-bearing validation: the full plan pipeline (order +
    /// schedule + symmetry breaking) agrees with brute force on random
    /// graphs, for every benchmark pattern and both induced semantics.
    #[test]
    fn plans_agree_with_brute_force_on_random_graphs() {
        let patterns = [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::wedge(),
            Pattern::path(4),
            Pattern::star(3),
        ];
        for seed in 0..4 {
            let g = erdos_renyi(14, 34, seed);
            for p in &patterns {
                for induced in [Induced::Vertex, Induced::Edge] {
                    let expected = count_embeddings(&g, p, induced);
                    let plan = ExecutionPlan::compile(p, induced);
                    let got = count_plan(&g, &plan);
                    assert_eq!(got, expected, "{p} ({induced:?}) seed {seed}\n{plan}");
                }
            }
        }
    }

    /// Without restrictions the plan would count every automorphic image;
    /// check `restricted × |Aut| = ordered` holds through the whole stack.
    #[test]
    fn symmetry_breaking_counts_each_class_once() {
        let g = erdos_renyi(12, 30, 9);
        for p in [
            Pattern::triangle(),
            Pattern::diamond(),
            Pattern::four_cycle(),
        ] {
            let ordered = count_ordered_maps(&g, &p, Induced::Vertex);
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            let restricted = count_plan(&g, &plan);
            assert_eq!(
                restricted * plan.automorphism_count() as u64,
                ordered,
                "{p}"
            );
        }
    }

    #[test]
    fn parallel_oracle_matches_sequential() {
        let g = erdos_renyi(14, 34, 6);
        for p in [Pattern::triangle(), Pattern::diamond(), Pattern::star(3)] {
            for induced in [Induced::Vertex, Induced::Edge] {
                let expected = count_embeddings(&g, &p, induced);
                for threads in [1, 2, 4] {
                    assert_eq!(
                        count_embeddings_parallel(&g, &p, induced, threads),
                        expected,
                        "{p} ({induced:?}) at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn five_clique_dense_check() {
        let g = erdos_renyi(10, 38, 3);
        let expected = count_embeddings(&g, &Pattern::clique(5), Induced::Vertex);
        let plan = ExecutionPlan::compile(&Pattern::clique(5), Induced::Vertex);
        assert_eq!(count_plan(&g, &plan), expected);
    }
}
