//! Typed errors for the parallel mining engine.
//!
//! Error-handling policy (DESIGN.md §11): the infallible `count_*` APIs
//! treat worker panics as fatal (plans produced by the compiler cannot
//! panic the interpreter, so a panic is a bug); the fallible `try_count_*`
//! APIs isolate each worker task with `catch_unwind` and surface failures
//! as [`EngineError`] values carrying the failed root partitions, so a
//! long-running host process (the bench harness, a service) can report and
//! continue instead of aborting.

use std::error::Error;
use std::fmt;

use fingers_verify::VerifyReport;

use crate::cancel::CancelKind;
use crate::task::MiningTask;

/// One isolated worker failure: the root partition whose task panicked,
/// plus the panic payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionFailure {
    /// The root range whose DFS panicked.
    pub task: MiningTask,
    /// The panic message (`"non-string panic payload"` when the payload
    /// was neither `&str` nor `String`).
    pub message: String,
}

impl fmt::Display for PartitionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "roots [{}, {}): {}",
            self.task.start, self.task.end, self.message
        )
    }
}

/// Error produced by the fallible parallel mining APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// One or more worker tasks panicked. Every failed partition is
    /// reported; counts from the surviving partitions are discarded (a
    /// partial count would silently under-report).
    WorkerPanic {
        /// The failed partitions, in task-claim order.
        failures: Vec<PartitionFailure>,
    },
    /// The execution plan failed static verification before any worker
    /// ran (see `fingers_verify::verify`): the engine refuses to execute
    /// a plan that would read unmaterialized buffers or miscount.
    InvalidPlan {
        /// The verifier's full report, including every diagnostic.
        report: VerifyReport,
    },
    /// The run's [`crate::cancel::CancelToken`] fired (explicit cancel or
    /// deadline) and every worker stopped at its next root-task boundary.
    /// All partial counts were discarded — a partial count is
    /// indistinguishable from a correct smaller one, so none ever leaks.
    Cancelled {
        /// Whether the token was cancelled explicitly or by deadline.
        kind: CancelKind,
    },
    /// The query's metered memory footprint crossed its byte budget and
    /// every worker stopped at its next root-task boundary — the same
    /// cooperative, all-or-nothing contract as [`EngineError::Cancelled`]:
    /// partial counts are discarded, the miner state stays reusable, and
    /// the shared gauge returns to baseline.
    MemBudgetExceeded {
        /// Metered bytes at the boundary that tripped the budget.
        used_bytes: u64,
        /// The configured per-query budget.
        budget_bytes: u64,
    },
}

impl EngineError {
    /// The failed root partitions (empty for pre-run failures like
    /// [`EngineError::InvalidPlan`], where no task ever started).
    pub fn failed_partitions(&self) -> &[PartitionFailure] {
        match self {
            EngineError::WorkerPanic { failures } => failures,
            _ => &[],
        }
    }

    /// Why the run was cancelled, when it was (`None` for every other
    /// failure mode).
    pub fn cancel_kind(&self) -> Option<CancelKind> {
        match self {
            EngineError::Cancelled { kind } => Some(*kind),
            _ => None,
        }
    }

    /// The `(used, budget)` bytes of a memory-budget abort (`None` for
    /// every other failure mode).
    pub fn mem_budget(&self) -> Option<(u64, u64)> {
        match self {
            EngineError::MemBudgetExceeded {
                used_bytes,
                budget_bytes,
            } => Some((*used_bytes, *budget_bytes)),
            _ => None,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanic { failures } => {
                write!(
                    f,
                    "{} mining task{} panicked",
                    failures.len(),
                    if failures.len() == 1 { "" } else { "s" }
                )?;
                for failure in failures {
                    write!(f, "; {failure}")?;
                }
                Ok(())
            }
            EngineError::InvalidPlan { report } => {
                write!(f, "execution plan failed static verification: {report}")
            }
            EngineError::Cancelled { kind } => match kind {
                CancelKind::Explicit => write!(f, "mining run cancelled"),
                CancelKind::Deadline => write!(f, "mining run exceeded its deadline"),
            },
            EngineError::MemBudgetExceeded {
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "mining run exceeded its memory budget ({used_bytes} bytes used, \
                 budget {budget_bytes})"
            ),
        }
    }
}

impl Error for EngineError {}

/// Renders a `catch_unwind` payload as text.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_failed_partition() {
        let e = EngineError::WorkerPanic {
            failures: vec![
                PartitionFailure {
                    task: MiningTask { start: 0, end: 10 },
                    message: "boom".into(),
                },
                PartitionFailure {
                    task: MiningTask { start: 30, end: 40 },
                    message: "bang".into(),
                },
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("2 mining tasks panicked"), "{msg}");
        assert!(msg.contains("[0, 10): boom"), "{msg}");
        assert!(msg.contains("[30, 40): bang"), "{msg}");
        assert_eq!(e.failed_partitions().len(), 2);
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<EngineError>();
    }

    #[test]
    fn panic_payloads_render() {
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42u32)), "non-string panic payload");
    }
}
