//! Vertex-order selection for execution plans.
//!
//! The compiler first decides the order in which pattern vertices are
//! matched (paper Section 2.1, step 1). A good order (AutoMine-style)
//! starts at a high-degree vertex and greedily keeps the matched prefix
//! maximally connected, so candidate sets shrink as early as possible and
//! every level has at least one connected ancestor (required for the
//! incremental materialization of Equation (1)).

use crate::Pattern;

/// Chooses a connected matching order for `pattern`.
///
/// Returns a permutation `order` where `order[i]` is the original pattern
/// vertex matched at level `i`. Guarantees that every vertex after the
/// first is adjacent to at least one earlier vertex.
///
/// Heuristic: start at the maximum-degree vertex; at each step pick the
/// unmatched vertex with (a) the most connections into the matched prefix,
/// then (b) the highest total degree, then (c) the smallest index (for
/// determinism).
///
/// # Example
///
/// ```
/// use fingers_pattern::{connected_vertex_order, Pattern};
/// // The tailed triangle orders the triangle before the tail, matching the
/// // paper's Figure 1 schedule.
/// assert_eq!(connected_vertex_order(&Pattern::tailed_triangle()), vec![0, 1, 2, 3]);
/// ```
pub fn connected_vertex_order(pattern: &Pattern) -> Vec<usize> {
    let k = pattern.size();
    let mut order = Vec::with_capacity(k);
    let mut placed = vec![false; k];

    // §11: Pattern::from_edges rejects k == 0, so the range is non-empty;
    // an empty pattern here is a constructor bug, not a recoverable state.
    #[allow(clippy::expect_used)]
    let first = (0..k)
        .max_by_key(|&v| (pattern.degree(v), std::cmp::Reverse(v)))
        .expect("patterns are non-empty");
    order.push(first);
    placed[first] = true;

    while order.len() < k {
        // §11: the loop condition guarantees an unplaced vertex remains, so
        // the filtered max is never empty; reaching None is a loop bug.
        #[allow(clippy::expect_used)]
        let next = (0..k)
            .filter(|&v| !placed[v])
            .max_by_key(|&v| {
                let connections = order
                    .iter()
                    .filter(|&&w| pattern.are_adjacent(v, w))
                    .count();
                (connections, pattern.degree(v), std::cmp::Reverse(v))
            })
            .expect("some vertex remains");
        let connections = order
            .iter()
            .filter(|&&w| pattern.are_adjacent(next, w))
            .count();
        assert!(
            connections > 0,
            "pattern connectivity guarantees a connected order"
        );
        order.push(next);
        placed[next] = true;
    }
    order
}

/// Enumerates every connected matching order of `pattern` (each vertex
/// after the first adjacent to an earlier one).
///
/// The count is bounded by `k!` (≤ 40320 for the supported sizes); cliques
/// hit the bound, sparse patterns stay far below it.
pub fn all_connected_orders(pattern: &Pattern) -> Vec<Vec<usize>> {
    let k = pattern.size();
    let mut result = Vec::new();
    let mut order = Vec::with_capacity(k);
    let mut used = vec![false; k];
    fn extend(
        pattern: &Pattern,
        order: &mut Vec<usize>,
        used: &mut Vec<bool>,
        result: &mut Vec<Vec<usize>>,
    ) {
        let k = pattern.size();
        if order.len() == k {
            result.push(order.clone());
            return;
        }
        for v in 0..k {
            if used[v] {
                continue;
            }
            if !order.is_empty() && !order.iter().any(|&w| pattern.are_adjacent(v, w)) {
                continue;
            }
            used[v] = true;
            order.push(v);
            extend(pattern, order, used, result);
            order.pop();
            used[v] = false;
        }
    }
    extend(pattern, &mut order, &mut used, &mut result);
    result
}

/// Estimated mining cost of matching `pattern` in `order` on an
/// Erdős–Rényi-like graph with `n` vertices and edge density `p`:
/// the expected total number of search-tree nodes, with candidate-set
/// sizes shrunk by `p` per connected ancestor and `(1 − p)` per
/// disconnected one (vertex-induced).
///
/// This is the classic estimator pattern-aware compilers (AutoMine,
/// GraphPi) use to rank orders; exact only for ER graphs, but the ranking
/// transfers well.
pub fn estimated_order_cost(pattern: &Pattern, order: &[usize], n: f64, p: f64) -> f64 {
    let relabeled = pattern.relabeled(order);
    let k = relabeled.size();
    let mut nodes = n; // level-0 roots
    let mut total = nodes;
    for j in 1..k {
        let connected = (0..j).filter(|&i| relabeled.are_adjacent(i, j)).count();
        let disconnected = j - connected;
        let set_size = n * p.powi(connected as i32) * (1.0 - p).powi(disconnected as i32);
        nodes *= set_size.max(1e-12);
        total += nodes;
    }
    total
}

/// Chooses the connected order minimizing [`estimated_order_cost`] for a
/// graph with `n` vertices and density `p` (ties broken lexicographically
/// for determinism).
///
/// # Panics
///
/// Panics if `n <= 0` or `p` is outside `(0, 1)`.
// §11: estimated_order_cost returns finite f64s for the asserted (n, p)
// domain, and connected patterns always admit at least one connected order
// (connected_vertex_order constructs one); either expect failing is an
// internal invariant violation, not an input error.
#[allow(clippy::expect_used)] // §11: justified above
pub fn optimized_vertex_order(pattern: &Pattern, n: f64, p: f64) -> Vec<usize> {
    assert!(n > 0.0, "graph size must be positive");
    assert!(p > 0.0 && p < 1.0, "density must be in (0, 1)");
    all_connected_orders(pattern)
        .into_iter()
        .min_by(|a, b| {
            let ca = estimated_order_cost(pattern, a, n, p);
            let cb = estimated_order_cost(pattern, b, n, p);
            ca.partial_cmp(&cb)
                .expect("finite costs")
                .then_with(|| a.cmp(b))
        })
        .expect("patterns have at least one connected order")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_connected_order(p: &Pattern, order: &[usize]) {
        assert_eq!(order.len(), p.size());
        let mut seen = vec![false; p.size()];
        seen[order[0]] = true;
        for &v in &order[1..] {
            assert!(
                (0..p.size()).any(|w| seen[w] && p.are_adjacent(v, w)),
                "vertex {v} not connected to the prefix in {order:?}"
            );
            seen[v] = true;
        }
    }

    #[test]
    fn orders_are_connected_for_all_benchmarks() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::clique(5),
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::wedge(),
            Pattern::path(5),
            Pattern::star(4),
        ] {
            let order = connected_vertex_order(&p);
            assert_connected_order(&p, &order);
        }
    }

    #[test]
    fn tailed_triangle_defers_the_tail() {
        // The degree-1 tail should be matched last: candidate sets stay
        // small through the triangle, exactly as Figure 2's loop nest does.
        let order = connected_vertex_order(&Pattern::tailed_triangle());
        assert_eq!(order[3], 3);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn star_starts_at_center() {
        let order = connected_vertex_order(&Pattern::star(4));
        assert_eq!(order[0], 0);
    }

    #[test]
    fn order_is_deterministic() {
        let p = Pattern::diamond();
        assert_eq!(connected_vertex_order(&p), connected_vertex_order(&p));
    }

    #[test]
    fn diamond_starts_at_degree_three() {
        let p = Pattern::diamond();
        let order = connected_vertex_order(&p);
        assert_eq!(p.degree(order[0]), 3);
        assert_eq!(p.degree(order[1]), 3);
    }

    #[test]
    fn all_connected_orders_counts() {
        // Triangle: every permutation is connected → 3! = 6.
        assert_eq!(all_connected_orders(&Pattern::triangle()).len(), 6);
        // 4-path 0-1-2-3: orders must grow a connected prefix → 8.
        assert_eq!(all_connected_orders(&Pattern::path(4)).len(), 8);
        // Star: any order starting with the pattern works only if... the
        // center must come first or second.
        let star_orders = all_connected_orders(&Pattern::star(3));
        assert!(!star_orders.is_empty());
        for o in &star_orders {
            assert_connected_order(&Pattern::star(3), o);
        }
    }

    #[test]
    fn every_enumerated_order_is_connected() {
        for p in [
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::house(),
        ] {
            for o in all_connected_orders(&p) {
                assert_connected_order(&p, &o);
            }
        }
    }

    #[test]
    fn cost_prefers_dense_prefixes() {
        // For the tailed triangle on a sparse graph, matching the triangle
        // first is cheaper than hanging the tail early: the optimized order
        // must put the degree-1 tail last.
        let p = Pattern::tailed_triangle();
        let order = optimized_vertex_order(&p, 10_000.0, 0.001);
        assert_eq!(order[3], 3, "tail matched too early in {order:?}");
    }

    #[test]
    fn optimized_order_is_deterministic() {
        let p = Pattern::house();
        assert_eq!(
            optimized_vertex_order(&p, 1000.0, 0.01),
            optimized_vertex_order(&p, 1000.0, 0.01)
        );
    }

    #[test]
    fn cost_is_monotone_in_graph_size() {
        let p = Pattern::triangle();
        let o = connected_vertex_order(&p);
        let small = estimated_order_cost(&p, &o, 100.0, 0.05);
        let large = estimated_order_cost(&p, &o, 10_000.0, 0.05);
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn optimizer_rejects_bad_density() {
        optimized_vertex_order(&Pattern::triangle(), 100.0, 1.5);
    }
}
