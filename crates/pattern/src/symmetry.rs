//! Symmetry-breaking restriction synthesis.
//!
//! Patterns with non-trivial automorphisms would otherwise have every
//! embedding discovered `|Aut(P)|` times. Following GraphZero's approach
//! (paper Section 2.1), we emit a set of `u_a < u_b` restrictions on mapped
//! input-graph vertex IDs such that exactly one automorphic image of each
//! embedding satisfies all of them.
//!
//! The construction is the orbit–stabilizer scheme: walk the ordered pattern
//! vertices; for vertex `v`, every other member `w` of `v`'s orbit under the
//! current automorphism subgroup yields a restriction `u_v < u_w`; then
//! shrink the subgroup to the stabilizer of `v` and continue. Sequentially
//! minimizing over orbits picks a unique representative per automorphism
//! class — an invariant the mining crate verifies against brute force.

use crate::automorphism::automorphisms;
use crate::Pattern;

/// Computes symmetry-breaking restrictions for `pattern` as pairs
/// `(a, b)` meaning "the input-graph vertex mapped to pattern vertex `a`
/// must have a smaller ID than the one mapped to `b`".
///
/// Pairs are returned sorted and deduplicated. A pattern with only the
/// trivial automorphism yields no restrictions.
///
/// # Example
///
/// ```
/// use fingers_pattern::{symmetry_breaking_restrictions, Pattern};
/// // Triangle: full symmetry forces a total order u0 < u1 < u2.
/// let r = symmetry_breaking_restrictions(&Pattern::triangle());
/// assert_eq!(r, vec![(0, 1), (0, 2), (1, 2)]);
/// ```
pub fn symmetry_breaking_restrictions(pattern: &Pattern) -> Vec<(usize, usize)> {
    let k = pattern.size();
    let mut group = automorphisms(pattern);
    let mut restrictions: Vec<(usize, usize)> = Vec::new();
    for v in 0..k {
        for sigma in &group {
            let w = sigma[v];
            if w != v {
                restrictions.push((v, w));
            }
        }
        group.retain(|sigma| sigma[v] == v);
    }
    restrictions.sort_unstable();
    restrictions.dedup();
    restrictions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_gets_total_order() {
        let r = symmetry_breaking_restrictions(&Pattern::triangle());
        assert_eq!(r, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn clique_k_gets_chain() {
        // A k-clique needs a full order: k(k−1)/2 restrictions.
        let r = symmetry_breaking_restrictions(&Pattern::clique(4));
        assert_eq!(r.len(), 6);
        let r = symmetry_breaking_restrictions(&Pattern::clique(5));
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn tailed_triangle_gets_single_restriction() {
        // Only the two symmetric triangle vertices are exchangeable: the
        // paper's Figure 1 "u1 > u2" (direction is conventional; we emit
        // u1 < u2, which breaks the same symmetry).
        let r = symmetry_breaking_restrictions(&Pattern::tailed_triangle());
        assert_eq!(r, vec![(1, 2)]);
    }

    #[test]
    fn asymmetric_pattern_gets_none() {
        // A "paw with extra tail": triangle 0-1-2 with a 2-path tail 0-3-4
        // is asymmetric once the tail lengths differ... the simplest
        // asymmetric small pattern: triangle with tails of lengths 1 and 2
        // on different vertices.
        let p = Pattern::from_edges(6, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (4, 5)]);
        assert_eq!(automorphisms(&p).len(), 1);
        assert!(symmetry_breaking_restrictions(&p).is_empty());
    }

    #[test]
    fn restrictions_never_relate_a_vertex_to_itself() {
        for p in [
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::wedge(),
            Pattern::star(4),
        ] {
            for (a, b) in symmetry_breaking_restrictions(&p) {
                assert_ne!(a, b);
                assert!(a < p.size() && b < p.size());
            }
        }
    }

    /// Every non-identity automorphism must violate at least one restriction
    /// when interpreted as an ID ordering — the "at most one representative"
    /// half of correctness (the "at least one" half is validated empirically
    /// against brute force in `fingers-mining`).
    #[test]
    fn restrictions_kill_every_nonidentity_automorphism() {
        for p in [
            Pattern::triangle(),
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::clique(5),
            Pattern::wedge(),
            Pattern::star(3),
            Pattern::path(4),
        ] {
            let restrictions = symmetry_breaking_restrictions(&p);
            for sigma in automorphisms(&p) {
                if sigma.iter().enumerate().all(|(i, &x)| i == x) {
                    continue;
                }
                // Suppose an embedding f satisfies all restrictions with
                // strictly increasing IDs along them. Its image under sigma
                // maps pattern vertex v to f(sigma(v)). If both f and f∘sigma
                // satisfied all restrictions, sigma would fix the canonical
                // representative — contradiction expected. We check a
                // necessary combinatorial condition: there exist (a, b) in
                // restrictions with (sigma(a), sigma(b)) ordered oppositely
                // by some restriction chain. A simpler sufficient check:
                // sigma must not map the restriction DAG onto itself
                // order-consistently.
                let consistent = is_order_consistent(&restrictions, &sigma, p.size());
                assert!(
                    !consistent,
                    "{p}: automorphism {sigma:?} survives restrictions {restrictions:?}"
                );
            }
        }
    }

    /// Checks whether there is a vertex-ID assignment satisfying both the
    /// restrictions and their sigma-images simultaneously with all the
    /// orbit inequalities strict — i.e. whether sigma could leave a
    /// restricted embedding restricted. Uses a topological-order test on
    /// the union DAG plus the requirement that sigma is non-identity on a
    /// constrained orbit.
    fn is_order_consistent(restrictions: &[(usize, usize)], sigma: &[usize], k: usize) -> bool {
        // Build constraint graph: a -> b for each restriction (a, b) and for
        // each sigma-image (sigma(a), sigma(b)). If this digraph is acyclic,
        // an assignment exists satisfying both, meaning sigma maps some
        // valid embedding to another valid embedding (bad). One extra
        // subtlety: sigma then maps representative to representative, which
        // is only acceptable for the identity.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in restrictions {
            edges.push((a, b));
            edges.push((sigma[a], sigma[b]));
        }
        // Also encode that the embedding and its sigma-image use the *same*
        // ID multiset: if sigma moves v, the IDs of v and sigma(v) coincide
        // across the two embeddings. For the canonical-representative
        // argument it suffices that v and sigma(v) share an ID variable:
        // contract orbits of sigma.
        let mut repr: Vec<usize> = (0..k).collect();
        fn find(repr: &mut Vec<usize>, x: usize) -> usize {
            if repr[x] != x {
                let r = find(repr, repr[x]);
                repr[x] = r;
                r
            } else {
                x
            }
        }
        for (v, &sv) in sigma.iter().enumerate() {
            let (a, b) = (find(&mut repr, v), find(&mut repr, sv));
            if a != b {
                repr[a] = b;
            }
        }
        // Cycle detection on contracted graph with strict edges.
        let mut adj = vec![Vec::new(); k];
        for (a, b) in edges {
            let (ca, cb) = (find(&mut repr, a), find(&mut repr, b));
            if ca == cb {
                return false; // strict edge within one ID class: contradiction
            }
            adj[ca].push(cb);
        }
        // DFS cycle check.
        let mut state = vec![0u8; k];
        fn has_cycle(v: usize, adj: &[Vec<usize>], state: &mut [u8]) -> bool {
            state[v] = 1;
            for &w in &adj[v] {
                let seen = state[w];
                if seen == 1 || (seen == 0 && has_cycle(w, adj, state)) {
                    return true;
                }
            }
            state[v] = 2;
            false
        }
        for v in 0..k {
            if state[v] == 0 && has_cycle(v, &adj, &mut state) {
                return false;
            }
        }
        true
    }
}
