//! The paper's benchmark workloads (Section 5).
//!
//! Six single patterns — triangle (`tc`), 4-clique (`4cl`), 5-clique
//! (`5cl`), tailed triangle (`tt`), 4-cycle (`cyc`), diamond (`dia`) — plus
//! the multi-pattern 3-motif census (`3mc`).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Induced, MultiPlan, Pattern};

/// One of the seven evaluated mining workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Triangle counting/listing.
    Tc,
    /// 4-clique listing.
    Cl4,
    /// 5-clique listing.
    Cl5,
    /// Tailed-triangle listing (the paper's running example).
    Tt,
    /// 4-cycle listing.
    Cyc,
    /// Diamond listing.
    Dia,
    /// 3-motif census (triangles + wedges, multi-pattern).
    Mc3,
}

impl Benchmark {
    /// All seven benchmarks in the paper's figure order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Tc,
        Benchmark::Cl4,
        Benchmark::Cl5,
        Benchmark::Tt,
        Benchmark::Cyc,
        Benchmark::Dia,
        Benchmark::Mc3,
    ];

    /// The abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Benchmark::Tc => "tc",
            Benchmark::Cl4 => "4cl",
            Benchmark::Cl5 => "5cl",
            Benchmark::Tt => "tt",
            Benchmark::Cyc => "cyc",
            Benchmark::Dia => "dia",
            Benchmark::Mc3 => "3mc",
        }
    }

    /// The workload's patterns.
    pub fn patterns(self) -> Vec<Pattern> {
        match self {
            Benchmark::Tc => vec![Pattern::triangle()],
            Benchmark::Cl4 => vec![Pattern::clique(4)],
            Benchmark::Cl5 => vec![Pattern::clique(5)],
            Benchmark::Tt => vec![Pattern::tailed_triangle()],
            Benchmark::Cyc => vec![Pattern::four_cycle()],
            Benchmark::Dia => vec![Pattern::diamond()],
            Benchmark::Mc3 => vec![Pattern::triangle(), Pattern::wedge()],
        }
    }

    /// Compiles the workload into a (multi-)plan. The paper mines
    /// vertex-induced subgraphs for these benchmarks.
    pub fn plan(self) -> MultiPlan {
        match self {
            Benchmark::Mc3 => MultiPlan::three_motif(),
            _ => {
                let patterns = self.patterns();
                MultiPlan::new(self.abbrev(), &patterns, Induced::Vertex)
            }
        }
    }

    /// Whether this is a multi-pattern workload.
    pub fn is_multi_pattern(self) -> bool {
        self == Benchmark::Mc3
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_compile() {
        for b in Benchmark::ALL {
            let plan = b.plan();
            assert!(!plan.plans().is_empty(), "{b}");
        }
    }

    #[test]
    fn abbreviations_match_paper() {
        let abbrevs: Vec<_> = Benchmark::ALL.iter().map(|b| b.abbrev()).collect();
        assert_eq!(abbrevs, ["tc", "4cl", "5cl", "tt", "cyc", "dia", "3mc"]);
    }

    #[test]
    fn only_3mc_is_multi_pattern() {
        for b in Benchmark::ALL {
            assert_eq!(b.is_multi_pattern(), b == Benchmark::Mc3, "{b}");
        }
    }

    #[test]
    fn pattern_sizes_match() {
        assert_eq!(Benchmark::Cl5.plan().max_pattern_size(), 5);
        assert_eq!(Benchmark::Tt.plan().max_pattern_size(), 4);
        assert_eq!(Benchmark::Mc3.plan().max_pattern_size(), 3);
    }
}
