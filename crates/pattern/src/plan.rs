//! Execution plans: vertex order + set-operation schedules + restrictions.

use serde::{Deserialize, Serialize};
use std::fmt;

use fingers_setops::SetOpKind;

use crate::order::connected_vertex_order;
use crate::symmetry::symmetry_breaking_restrictions;
use crate::Pattern;

/// Subgraph semantics (paper Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Induced {
    /// Vertex-induced: the embedding's edge set is exactly the edges of the
    /// input graph among the mapped vertices — schedules use both
    /// intersections and (anti-)subtractions.
    Vertex,
    /// Edge-induced: only the pattern's edges must be present — schedules
    /// drop all subtractions.
    Edge,
}

/// One scheduled update of a future level's candidate vertex set,
/// incrementally applying Equation (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanOp {
    /// `S_target := N(u_level)` — the target's first connected ancestor is
    /// the level at which this action runs, and no earlier disconnected
    /// ancestors exist (or the mode is edge-induced).
    Init {
        /// Level whose candidate set is being materialized.
        target: usize,
    },
    /// `S_target := N(u_level) − N(u_short)` — the paper's postponed
    /// **anti-subtraction**: the streamed neighbor list of the current
    /// level is the long operand, an earlier disconnected ancestor's list
    /// is the short operand.
    InitAnti {
        /// Level whose candidate set is being materialized.
        target: usize,
        /// The earlier disconnected ancestor supplying the short operand.
        short: usize,
    },
    /// `S_target := S_target op N(u_list)` — an incremental update with the
    /// neighbor list of level `list` as the long operand. `list` equals the
    /// current level except for postponed subtractions of earlier
    /// disconnected ancestors, which execute at the first connected
    /// ancestor's level.
    Apply {
        /// Level whose candidate set is updated.
        target: usize,
        /// Whose neighbor list is the long operand.
        list: usize,
        /// `Intersect` (connected ancestor) or `Subtract` (disconnected).
        kind: SetOpKind,
    },
}

impl PlanOp {
    /// The level whose candidate set this op touches.
    pub fn target(&self) -> usize {
        match *self {
            PlanOp::Init { target }
            | PlanOp::InitAnti { target, .. }
            | PlanOp::Apply { target, .. } => target,
        }
    }

    /// The level whose neighbor list this op streams as its long operand
    /// (`None` for `Init`, which merely aliases).
    pub fn streamed_list(&self, at_level: usize) -> Option<usize> {
        match *self {
            PlanOp::Init { .. } => None,
            PlanOp::InitAnti { .. } => Some(at_level),
            PlanOp::Apply { list, .. } => Some(list),
        }
    }
}

/// The compiled schedule of one future level `j`: how `S_j` is materialized
/// across levels `first_connected..j`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSchedule {
    /// The level `j` this schedule materializes candidates for.
    pub target: usize,
    /// `c`: the first (smallest) ancestor level connected to `j`. `S_j`
    /// comes into existence when level `c` is matched.
    pub first_connected: usize,
    /// Ancestor levels `a` with a symmetry-breaking restriction
    /// `u_a < u_j` (lower bounds on the candidate IDs at level `j`).
    pub lower_bounds: Vec<usize>,
}

/// A compiled pattern-aware execution plan (paper Section 2.1).
///
/// The plan relabels the pattern so that pattern vertex `i` is matched at
/// tree level `i`; all schedules and restrictions refer to levels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    pattern: Pattern,
    induced: Induced,
    /// `actions[i]` = ops to run when a vertex is newly matched at level
    /// `i`, in execution order.
    actions: Vec<Vec<PlanOp>>,
    schedules: Vec<LevelSchedule>,
    restrictions: Vec<(usize, usize)>,
}

impl ExecutionPlan {
    /// Compiles `pattern` into an execution plan.
    ///
    /// Chooses a connected vertex order, derives each level's incremental
    /// set-operation schedule per Equation (1) (with the postponed
    /// anti-subtraction rewriting for levels whose earliest ancestors are
    /// disconnected), and synthesizes symmetry-breaking restrictions.
    pub fn compile(pattern: &Pattern, induced: Induced) -> Self {
        Self::compile_with_order(pattern, induced, &connected_vertex_order(pattern))
    }

    /// Compiles with an order optimized for a target graph's size and edge
    /// density (see
    /// [`optimized_vertex_order`](crate::order::optimized_vertex_order)):
    /// every connected order is enumerated and ranked by the expected
    /// search-tree size.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 0` or `density` is outside `(0, 1)`.
    pub fn compile_optimized(pattern: &Pattern, induced: Induced, n: f64, density: f64) -> Self {
        let order = crate::order::optimized_vertex_order(pattern, n, density);
        Self::compile_with_order(pattern, induced, &order)
    }

    /// Compiles with an explicit matching order (`order[i]` = original
    /// pattern vertex matched at level `i`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation, or if some vertex after the
    /// first is not adjacent to an earlier one (the incremental
    /// materialization of Equation (1) requires a connected order).
    pub fn compile_with_order(pattern: &Pattern, induced: Induced, order: &[usize]) -> Self {
        for (pos, &v) in order.iter().enumerate().skip(1) {
            assert!(
                order[..pos].iter().any(|&w| pattern.are_adjacent(v, w)),
                "order {order:?} is not connected at position {pos}"
            );
        }
        let pattern = pattern.relabeled(order);
        let k = pattern.size();
        let restrictions = symmetry_breaking_restrictions(&pattern);

        let mut actions: Vec<Vec<PlanOp>> = vec![Vec::new(); k];
        let mut schedules = Vec::with_capacity(k.saturating_sub(1));

        for j in 1..k {
            let connected: Vec<usize> = (0..j).filter(|&i| pattern.are_adjacent(i, j)).collect();
            // §11: compile_with_order requires a connected order (every
            // level has an earlier neighbor); an empty `connected` means
            // the order precondition was violated — a caller bug.
            #[allow(clippy::expect_used)] // §11: justified above
            let c = *connected
                .first()
                .expect("connected order guarantees an earlier neighbor");
            let disconnected_before: Vec<usize> = (0..c).collect(); // all i < c are disconnected
            let disconnected_after: Vec<usize> = (c + 1..j)
                .filter(|&i| !pattern.are_adjacent(i, j))
                .collect();

            // Materialization at level c.
            if induced == Induced::Vertex && !disconnected_before.is_empty() {
                // Postponed anti-subtraction: S_j := N(u_c) − N(u_p0), then
                // plain subtractions of the remaining earlier lists.
                actions[c].push(PlanOp::InitAnti {
                    target: j,
                    short: disconnected_before[0],
                });
                for &p in &disconnected_before[1..] {
                    actions[c].push(PlanOp::Apply {
                        target: j,
                        list: p,
                        kind: SetOpKind::Subtract,
                    });
                }
            } else {
                actions[c].push(PlanOp::Init { target: j });
            }

            // Incremental updates at later ancestor levels.
            for &i in connected.iter().skip(1) {
                actions[i].push(PlanOp::Apply {
                    target: j,
                    list: i,
                    kind: SetOpKind::Intersect,
                });
            }
            if induced == Induced::Vertex {
                for &i in &disconnected_after {
                    actions[i].push(PlanOp::Apply {
                        target: j,
                        list: i,
                        kind: SetOpKind::Subtract,
                    });
                }
            }

            let lower_bounds = restrictions
                .iter()
                .filter(|&&(_, b)| b == j)
                .map(|&(a, _)| a)
                .collect();
            schedules.push(LevelSchedule {
                target: j,
                first_connected: c,
                lower_bounds,
            });
        }

        // Deterministic execution order within a level: by target.
        for level_actions in &mut actions {
            level_actions.sort_by_key(|op| op.target());
        }

        Self {
            pattern,
            induced,
            actions,
            schedules,
            restrictions,
        }
    }

    /// Assembles a plan directly from its parts, **without any validation**.
    ///
    /// The compiler entry points ([`ExecutionPlan::compile`] and friends)
    /// are the only constructors that guarantee a sound plan; this one
    /// exists so that verification tooling (the `fingers-verify` mutation
    /// corpus) can build deliberately broken plans and assert the static
    /// verifier rejects them. `pattern` is taken as already relabeled
    /// (vertex `i` ↔ level `i`).
    pub fn from_raw_parts(
        pattern: Pattern,
        induced: Induced,
        actions: Vec<Vec<PlanOp>>,
        schedules: Vec<LevelSchedule>,
        restrictions: Vec<(usize, usize)>,
    ) -> Self {
        Self {
            pattern,
            induced,
            actions,
            schedules,
            restrictions,
        }
    }

    /// Number of pattern vertices `k` (= number of tree levels).
    pub fn pattern_size(&self) -> usize {
        self.pattern.size()
    }

    /// The relabeled pattern (vertex `i` ↔ level `i`).
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The subgraph semantics this plan was compiled for.
    pub fn induced(&self) -> Induced {
        self.induced
    }

    /// Ops to execute when a vertex is newly matched at `level`, in order.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.pattern_size()`.
    pub fn actions_at(&self, level: usize) -> &[PlanOp] {
        &self.actions[level]
    }

    /// The schedule of future level `j` (`1 ≤ j < k`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or out of range.
    pub fn schedule(&self, j: usize) -> &LevelSchedule {
        assert!(j >= 1, "level 0 iterates all vertices and has no schedule");
        &self.schedules[j - 1]
    }

    /// All level schedules, for levels `1..k`.
    pub fn schedules(&self) -> &[LevelSchedule] {
        &self.schedules
    }

    /// All symmetry-breaking restrictions as `(a, b)` = `u_a < u_b`.
    pub fn restrictions(&self) -> &[(usize, usize)] {
        &self.restrictions
    }

    /// Number of symmetry-breaking restrictions.
    pub fn restriction_count(&self) -> usize {
        self.restrictions.len()
    }

    /// The number of automorphic images each unrestricted embedding has —
    /// used by tests to validate the restrictions
    /// (`restricted × |Aut| = unrestricted`).
    pub fn automorphism_count(&self) -> usize {
        crate::automorphisms(&self.pattern).len()
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan for {} ({:?}-induced), {} levels:",
            self.pattern,
            self.induced,
            self.pattern_size()
        )?;
        for (i, ops) in self.actions.iter().enumerate() {
            write!(f, "  level {i}:")?;
            if ops.is_empty() {
                write!(f, " (extend only)")?;
            }
            for op in ops {
                match *op {
                    PlanOp::Init { target } => write!(f, " S{target}:=N(u{i});")?,
                    PlanOp::InitAnti { target, short } => {
                        write!(f, " S{target}:=N(u{i})-N(u{short});")?
                    }
                    PlanOp::Apply { target, list, kind } => {
                        let sym = match kind {
                            SetOpKind::Intersect => "∩",
                            SetOpKind::Subtract => "−",
                            SetOpKind::AntiSubtract => "anti−",
                        };
                        write!(f, " S{target}:=S{target}{sym}N(u{list});")?
                    }
                }
            }
            writeln!(f)?;
        }
        for &(a, b) in &self.restrictions {
            writeln!(f, "  restriction: u{a} < u{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_plan_is_one_intersection() {
        let plan = ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex);
        // Level 0: S1 := N(u0), S2 := N(u0); level 1: S2 ∩= N(u1).
        let l0 = plan.actions_at(0);
        assert_eq!(l0.len(), 2);
        assert!(matches!(l0[0], PlanOp::Init { target: 1 }));
        assert!(matches!(l0[1], PlanOp::Init { target: 2 }));
        let l1 = plan.actions_at(1);
        assert_eq!(l1.len(), 1);
        assert!(matches!(
            l1[0],
            PlanOp::Apply {
                target: 2,
                list: 1,
                kind: SetOpKind::Intersect
            }
        ));
        assert!(plan.actions_at(2).is_empty());
    }

    /// Figure 2's schedule for the tailed triangle:
    /// S1 = S2(1) = S3(1) = N(u0); S2 = S2(1) ∩ N(u1); S3(2) = S3(1) − N(u1);
    /// S3 = S3(2) − N(u2).
    #[test]
    fn tailed_triangle_plan_matches_figure_2() {
        let plan = ExecutionPlan::compile(&Pattern::tailed_triangle(), Induced::Vertex);
        let l0 = plan.actions_at(0);
        assert_eq!(l0.len(), 3); // S1, S2, S3 all initialized from N(u0)
        assert!(l0.iter().all(|op| matches!(op, PlanOp::Init { .. })));
        let l1 = plan.actions_at(1);
        assert_eq!(l1.len(), 2);
        assert!(matches!(
            l1[0],
            PlanOp::Apply {
                target: 2,
                list: 1,
                kind: SetOpKind::Intersect
            }
        ));
        assert!(matches!(
            l1[1],
            PlanOp::Apply {
                target: 3,
                list: 1,
                kind: SetOpKind::Subtract
            }
        ));
        let l2 = plan.actions_at(2);
        assert_eq!(l2.len(), 1);
        assert!(matches!(
            l2[0],
            PlanOp::Apply {
                target: 3,
                list: 2,
                kind: SetOpKind::Subtract
            }
        ));
    }

    #[test]
    fn edge_induced_drops_subtractions() {
        let plan = ExecutionPlan::compile(&Pattern::tailed_triangle(), Induced::Edge);
        for level in 0..plan.pattern_size() {
            for op in plan.actions_at(level) {
                match op {
                    PlanOp::Apply { kind, .. } => assert_eq!(*kind, SetOpKind::Intersect),
                    PlanOp::InitAnti { .. } => panic!("edge-induced must not anti-subtract"),
                    PlanOp::Init { .. } => {}
                }
            }
        }
    }

    #[test]
    fn four_cycle_uses_postponed_anti_subtraction() {
        // 4-cycle ordered 0-1-2-3 with edges (0,1),(1,2),(2,3),(3,0):
        // whichever connected order is chosen, the last vertex is adjacent
        // to two opposite vertices and NOT adjacent to one matched earlier;
        // the second matched vertex pair (0,2 style) is disconnected,
        // triggering InitAnti for some level in vertex-induced mode.
        let plan = ExecutionPlan::compile(&Pattern::four_cycle(), Induced::Vertex);
        let has_anti = (0..plan.pattern_size()).any(|l| {
            plan.actions_at(l)
                .iter()
                .any(|op| matches!(op, PlanOp::InitAnti { .. }))
        });
        assert!(has_anti, "\n{plan}");
    }

    #[test]
    fn clique_plans_have_no_subtractions() {
        for k in 3..=5 {
            let plan = ExecutionPlan::compile(&Pattern::clique(k), Induced::Vertex);
            for level in 0..k {
                for op in plan.actions_at(level) {
                    if let PlanOp::Apply { kind, .. } = op {
                        assert_eq!(*kind, SetOpKind::Intersect);
                    }
                }
            }
            // Full symmetry: k(k−1)/2 restrictions.
            assert_eq!(plan.restriction_count(), k * (k - 1) / 2);
        }
    }

    #[test]
    fn every_target_is_materialized_exactly_once() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::clique(5),
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::wedge(),
            Pattern::path(5),
            Pattern::star(4),
        ] {
            for induced in [Induced::Vertex, Induced::Edge] {
                let plan = ExecutionPlan::compile(&p, induced);
                let k = plan.pattern_size();
                for j in 1..k {
                    let inits: usize = (0..k)
                        .map(|l| {
                            plan.actions_at(l)
                                .iter()
                                .filter(|op| {
                                    op.target() == j
                                        && matches!(
                                            op,
                                            PlanOp::Init { .. } | PlanOp::InitAnti { .. }
                                        )
                                })
                                .count()
                        })
                        .sum();
                    assert_eq!(inits, 1, "{p} level {j} ({induced:?})");
                    // Initialization happens at the first connected ancestor.
                    let c = plan.schedule(j).first_connected;
                    assert!(plan.actions_at(c).iter().any(|op| op.target() == j
                        && matches!(op, PlanOp::Init { .. } | PlanOp::InitAnti { .. })));
                }
            }
        }
    }

    #[test]
    fn ops_never_execute_before_materialization_or_after_target() {
        for p in [
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::clique(5),
        ] {
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            for level in 0..plan.pattern_size() {
                for op in plan.actions_at(level) {
                    let j = op.target();
                    assert!(level < j, "op for S{j} at level {level}");
                    if matches!(op, PlanOp::Apply { .. }) {
                        assert!(level >= plan.schedule(j).first_connected);
                    }
                }
            }
        }
    }

    #[test]
    fn display_mentions_every_level() {
        let plan = ExecutionPlan::compile(&Pattern::diamond(), Induced::Vertex);
        let text = plan.to_string();
        for i in 0..4 {
            assert!(text.contains(&format!("level {i}")), "{text}");
        }
    }
}
