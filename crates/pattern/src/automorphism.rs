//! Exhaustive automorphism enumeration for small patterns.

use crate::Pattern;

/// Enumerates all automorphisms of `pattern` as permutations
/// (`perm[v]` = image of vertex `v`). The identity is always included.
///
/// Patterns are capped at [`MAX_PATTERN_VERTICES`](crate::MAX_PATTERN_VERTICES)
/// vertices, so exhaustive backtracking (with degree pruning) is instant.
///
/// # Example
///
/// ```
/// use fingers_pattern::{automorphisms, Pattern};
/// assert_eq!(automorphisms(&Pattern::triangle()).len(), 6); // S₃
/// assert_eq!(automorphisms(&Pattern::tailed_triangle()).len(), 2);
/// ```
pub fn automorphisms(pattern: &Pattern) -> Vec<Vec<usize>> {
    let k = pattern.size();
    let mut result = Vec::new();
    let mut perm = vec![usize::MAX; k];
    let mut used = vec![false; k];
    extend(pattern, &mut perm, &mut used, 0, &mut result);
    result
}

fn extend(
    pattern: &Pattern,
    perm: &mut Vec<usize>,
    used: &mut Vec<bool>,
    v: usize,
    result: &mut Vec<Vec<usize>>,
) {
    let k = pattern.size();
    if v == k {
        result.push(perm.clone());
        return;
    }
    for image in 0..k {
        if used[image] || pattern.degree(image) != pattern.degree(v) {
            continue;
        }
        // Adjacency to already-mapped vertices must be preserved both ways.
        let consistent =
            (0..v).all(|w| pattern.are_adjacent(v, w) == pattern.are_adjacent(image, perm[w]));
        if !consistent {
            continue;
        }
        perm[v] = image;
        used[image] = true;
        extend(pattern, perm, used, v + 1, result);
        used[image] = false;
        perm[v] = usize::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_automorphism(p: &Pattern, perm: &[usize]) -> bool {
        let k = p.size();
        (0..k).all(|a| (0..k).all(|b| p.are_adjacent(a, b) == p.are_adjacent(perm[a], perm[b])))
    }

    #[test]
    fn clique_automorphisms_are_all_permutations() {
        assert_eq!(automorphisms(&Pattern::clique(4)).len(), 24);
        assert_eq!(automorphisms(&Pattern::clique(5)).len(), 120);
    }

    #[test]
    fn four_cycle_is_dihedral() {
        // Aut(C4) = D4 of order 8.
        assert_eq!(automorphisms(&Pattern::four_cycle()).len(), 8);
    }

    #[test]
    fn diamond_has_four_automorphisms() {
        // Swap the two degree-3 vertices and/or the two degree-2 vertices.
        assert_eq!(automorphisms(&Pattern::diamond()).len(), 4);
    }

    #[test]
    fn wedge_has_leaf_swap() {
        assert_eq!(automorphisms(&Pattern::wedge()).len(), 2);
    }

    #[test]
    fn path4_has_reversal_only() {
        assert_eq!(automorphisms(&Pattern::path(4)).len(), 2);
    }

    #[test]
    fn all_results_are_valid_automorphisms() {
        for p in [
            Pattern::triangle(),
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::clique(5),
            Pattern::star(3),
        ] {
            let auts = automorphisms(&p);
            assert!(!auts.is_empty());
            // The identity is present.
            let k = p.size();
            assert!(auts
                .iter()
                .any(|a| a.iter().enumerate().all(|(i, &x)| i == x)));
            for a in &auts {
                assert!(is_automorphism(&p, a), "{p}: {a:?}");
            }
            // Group property: closed under composition.
            for a in &auts {
                for b in &auts {
                    let comp: Vec<usize> = (0..k).map(|v| a[b[v]]).collect();
                    assert!(auts.contains(&comp));
                }
            }
        }
    }
}
