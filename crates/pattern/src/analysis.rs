//! Static plan analysis: the workload character a compiled plan implies.
//!
//! The paper's Section 6.2 explains every per-pattern effect through plan
//! structure — cliques have no set-level parallelism (all schedules
//! identical), tt/cyc produce large sets via subtractions, dia subtracts
//! only at deep levels. This module computes those properties *statically*
//! from a compiled plan, so analyses (and the `plan_explorer` example) can
//! predict workload behaviour without running a simulation.

use serde::{Deserialize, Serialize};

use fingers_setops::SetOpKind;

use crate::{ExecutionPlan, PlanOp};

/// Op-mix counts of one compiled plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMix {
    /// `Init` actions (aliasing the streamed list).
    pub inits: usize,
    /// Postponed anti-subtraction initializations.
    pub init_antis: usize,
    /// Intersections.
    pub intersections: usize,
    /// Subtractions (including postponed ones).
    pub subtractions: usize,
}

impl OpMix {
    /// Total scheduled actions.
    pub fn total(&self) -> usize {
        self.inits + self.init_antis + self.intersections + self.subtractions
    }
}

/// Static analysis of a compiled plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanAnalysis {
    /// Pattern size `k`.
    pub levels: usize,
    /// Scheduled actions per level (`actions[i]` = ops run when level `i`
    /// is matched).
    pub ops_per_level: Vec<usize>,
    /// Op mix across the whole plan.
    pub mix: OpMix,
    /// Maximum *distinct* set operations at any level — the set-level
    /// parallelism ceiling (after dedup of identical computations).
    pub max_set_parallelism: usize,
    /// Whether any subtraction (or anti-subtraction) appears — plans
    /// without them (cliques, edge-induced) only shrink sets by
    /// intersection.
    pub has_subtractions: bool,
    /// The deepest level at which a subtraction executes (None if none) —
    /// dia's "subtractions only at the lower tree levels" is visible here.
    pub deepest_subtraction_level: Option<usize>,
    /// Number of symmetry-breaking restrictions.
    pub restrictions: usize,
}

/// Analyzes a compiled plan.
pub fn analyze(plan: &ExecutionPlan) -> PlanAnalysis {
    let k = plan.pattern_size();
    let mut ops_per_level = Vec::with_capacity(k);
    let mut mix = OpMix::default();
    let mut max_set_parallelism = 0;
    let mut deepest_subtraction_level = None;

    for level in 0..k {
        let actions = plan.actions_at(level);
        ops_per_level.push(actions.len());
        // Distinct computations at this level: Init actions alias (dedup to
        // at most one per clip bound — approximated as 1 here), InitAnti
        // and Apply are real ops but identical (target-independent) pairs
        // dedup. Statically we dedup by (op shape, list): two Apply ops at
        // the same level with the same kind and list on identical inputs
        // collapse — conservatively assume inputs identical only when the
        // targets were initialized identically, which holds for cliques.
        let mut distinct = 0usize;
        let mut seen: Vec<(u8, usize)> = Vec::new();
        for op in actions {
            match *op {
                PlanOp::Init { .. } => {
                    mix.inits += 1;
                }
                PlanOp::InitAnti { short, .. } => {
                    mix.init_antis += 1;
                    if !seen.contains(&(1, short)) {
                        seen.push((1, short));
                        distinct += 1;
                    }
                    deepest_subtraction_level = deepest_subtraction_level.max(Some(level));
                }
                PlanOp::Apply { list, kind, .. } => {
                    match kind {
                        SetOpKind::Intersect => mix.intersections += 1,
                        _ => {
                            mix.subtractions += 1;
                            deepest_subtraction_level = deepest_subtraction_level.max(Some(level));
                        }
                    }
                    let tag = (2 + kind as u8, list);
                    if !seen.contains(&tag) {
                        seen.push(tag);
                        distinct += 1;
                    }
                }
            }
        }
        max_set_parallelism = max_set_parallelism.max(distinct);
    }

    PlanAnalysis {
        levels: k,
        ops_per_level,
        mix,
        max_set_parallelism,
        has_subtractions: mix.init_antis + mix.subtractions > 0,
        deepest_subtraction_level,
        restrictions: plan.restriction_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Induced, Pattern};

    fn analyze_pattern(p: &Pattern) -> PlanAnalysis {
        analyze(&ExecutionPlan::compile(p, Induced::Vertex))
    }

    #[test]
    fn cliques_have_no_set_level_parallelism() {
        // Section 6.2: "Clique counting does not have set-level parallelism
        // as the candidate vertex sets for all future levels are always
        // identical" — statically: at most one distinct op per level.
        for k in 3..=5 {
            let a = analyze_pattern(&Pattern::clique(k));
            assert!(
                a.max_set_parallelism <= 1,
                "{k}-clique: {}",
                a.max_set_parallelism
            );
            assert!(!a.has_subtractions);
        }
    }

    #[test]
    fn tailed_triangle_mixes_ops() {
        let a = analyze_pattern(&Pattern::tailed_triangle());
        assert!(a.has_subtractions);
        assert_eq!(a.mix.intersections, 1); // S2 ∩= N(u1)
        assert_eq!(a.mix.subtractions, 2); // S3 −= N(u1), N(u2)
        assert_eq!(a.restrictions, 1);
        // At level 1 the intersect and subtract are distinct computations.
        assert!(a.max_set_parallelism >= 2);
    }

    #[test]
    fn diamond_subtracts_only_deep() {
        // Section 6.2: "the subtraction operations in dia are only at the
        // lower tree levels".
        let a = analyze_pattern(&Pattern::diamond());
        assert!(a.has_subtractions);
        assert_eq!(a.deepest_subtraction_level, Some(2));
        // And no subtraction earlier than level 2.
        let plan = ExecutionPlan::compile(&Pattern::diamond(), Induced::Vertex);
        for level in 0..2 {
            for op in plan.actions_at(level) {
                assert!(
                    !matches!(
                        op,
                        PlanOp::Apply {
                            kind: SetOpKind::Subtract,
                            ..
                        } | PlanOp::InitAnti { .. }
                    ),
                    "early subtraction at level {level}"
                );
            }
        }
    }

    #[test]
    fn edge_induced_plans_never_subtract() {
        for p in [
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::house(),
        ] {
            let a = analyze(&ExecutionPlan::compile(&p, Induced::Edge));
            assert!(!a.has_subtractions, "{p}");
            assert_eq!(a.mix.subtractions, 0);
            assert_eq!(a.mix.init_antis, 0);
        }
    }

    #[test]
    fn ops_per_level_sum_matches_mix_total() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(5),
            Pattern::four_cycle(),
            Pattern::gem(),
        ] {
            let a = analyze_pattern(&p);
            assert_eq!(a.ops_per_level.iter().sum::<usize>(), a.mix.total(), "{p}");
            assert_eq!(a.ops_per_level.len(), a.levels);
            // The last level never schedules ops (nothing left to build).
            assert_eq!(*a.ops_per_level.last().expect("non-empty"), 0);
        }
    }
}
