//! Pattern-aware execution-plan compiler for the FINGERS reproduction.
//!
//! State-of-the-art graph mining is *pattern-aware* (paper Section 2.1): the
//! user-defined pattern is compiled, ahead of mining, into an execution plan
//! consisting of
//!
//! 1. a **vertex order** `u_0, …, u_{k−1}` over the pattern vertices,
//! 2. per-level **set-operation schedules** materializing each candidate
//!    vertex set from ancestor neighbor lists via Equation (1)
//!    (intersection / subtraction / anti-subtraction), and
//! 3. **symmetry-breaking restrictions** that keep exactly one automorphic
//!    image of every embedding.
//!
//! This crate implements that compiler in the generic plan format both
//! FlexMiner and FINGERS consume, plus the pattern library of the paper's
//! benchmarks (triangle, 4-/5-clique, tailed triangle, 4-cycle, diamond,
//! and the multi-pattern 3-motif).
//!
//! # Example
//!
//! ```
//! use fingers_pattern::{Pattern, ExecutionPlan, Induced};
//!
//! let tt = Pattern::tailed_triangle();
//! let plan = ExecutionPlan::compile(&tt, Induced::Vertex);
//! assert_eq!(plan.pattern_size(), 4);
//! // The tailed triangle has one non-trivial automorphism (swapping the two
//! // symmetric triangle vertices), so one restriction is emitted.
//! assert_eq!(plan.restriction_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod automorphism;
pub mod benchmarks;
mod multipattern;
mod order;
pub mod parse;
mod pattern;
mod plan;
mod symmetry;

pub use automorphism::automorphisms;
pub use multipattern::MultiPlan;
pub use order::{
    all_connected_orders, connected_vertex_order, estimated_order_cost, optimized_vertex_order,
};
pub use parse::{parse_pattern, ParsePatternError};
pub use pattern::{Pattern, MAX_PATTERN_VERTICES};
pub use plan::{ExecutionPlan, Induced, LevelSchedule, PlanOp};
pub use symmetry::symmetry_breaking_restrictions;
