//! Small undirected pattern graphs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum pattern size supported by the compiler.
///
/// Real mining workloads use patterns of 3–7 vertices (the paper evaluates
/// up to 5-clique); automorphism enumeration is exhaustive, so we cap the
/// size where `k!` stays trivial.
pub const MAX_PATTERN_VERTICES: usize = 10;

/// An undirected, connected pattern graph on at most
/// [`MAX_PATTERN_VERTICES`] vertices, stored as per-vertex adjacency
/// bitmasks.
///
/// # Example
///
/// ```
/// use fingers_pattern::Pattern;
/// let p = Pattern::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// assert_eq!(p, Pattern::triangle());
/// assert!(p.are_adjacent(0, 2));
/// assert_eq!(p.degree(1), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pattern {
    adj: Vec<u16>,
    name: String,
}

// Equality and hashing consider only the structure; the name is display
// metadata (`Pattern::from_edges(3, …) == Pattern::triangle()`).
impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.adj == other.adj
    }
}

impl Eq for Pattern {}

impl std::hash::Hash for Pattern {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.adj.hash(state);
    }
}

impl Pattern {
    /// Builds a pattern from an edge list over vertices `0..k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`MAX_PATTERN_VERTICES`], if an edge
    /// endpoint is out of range or a self loop, or if the resulting pattern
    /// is disconnected (pattern-aware plans require every vertex to connect
    /// to an earlier one).
    pub fn from_edges(k: usize, edges: &[(usize, usize)]) -> Self {
        Self::from_edges_named(k, edges, format!("pattern{k}"))
    }

    /// [`Pattern::from_edges`] with an explicit display name.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Pattern::from_edges`].
    pub fn from_edges_named(k: usize, edges: &[(usize, usize)], name: impl Into<String>) -> Self {
        assert!(k > 0, "pattern must have at least one vertex");
        assert!(
            k <= MAX_PATTERN_VERTICES,
            "pattern size {k} exceeds the supported maximum {MAX_PATTERN_VERTICES}"
        );
        let mut adj = vec![0u16; k];
        for &(a, b) in edges {
            assert!(a < k && b < k, "edge ({a}, {b}) out of range for k={k}");
            assert_ne!(a, b, "pattern self loop at {a}");
            adj[a] |= 1 << b;
            adj[b] |= 1 << a;
        }
        let p = Self {
            adj,
            name: name.into(),
        };
        assert!(p.is_connected(), "pattern must be connected");
        p
    }

    /// Number of pattern vertices `k`.
    pub fn size(&self) -> usize {
        self.adj.len()
    }

    /// Number of pattern edges.
    pub fn edge_count(&self) -> usize {
        self.adj
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum::<usize>()
            / 2
    }

    /// Whether pattern vertices `a` and `b` are adjacent.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        assert!(a < self.size() && b < self.size(), "vertex out of range");
        self.adj[a] & (1 << b) != 0
    }

    /// Degree of pattern vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].count_ones() as usize
    }

    /// Adjacency bitmask of vertex `v` (bit `b` set iff `v`–`b` is an edge).
    pub fn adjacency_mask(&self, v: usize) -> u16 {
        self.adj[v]
    }

    /// The pattern's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the pattern is connected.
    pub fn is_connected(&self) -> bool {
        let k = self.size();
        if k == 1 {
            return true;
        }
        let mut seen = 1u16;
        let mut frontier = 1u16;
        while frontier != 0 {
            let mut next = 0u16;
            for v in 0..k {
                if frontier & (1 << v) != 0 {
                    next |= self.adj[v];
                }
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen.count_ones() as usize == k
    }

    /// Returns the pattern with vertices relabeled so that new vertex `i`
    /// is old vertex `order[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..k`.
    pub fn relabeled(&self, order: &[usize]) -> Self {
        let k = self.size();
        assert_eq!(order.len(), k, "order must cover all vertices");
        let mut inverse = vec![usize::MAX; k];
        for (new, &old) in order.iter().enumerate() {
            assert!(
                old < k && inverse[old] == usize::MAX,
                "order is not a permutation"
            );
            inverse[old] = new;
        }
        let mut adj = vec![0u16; k];
        for (new_a, &old_a) in order.iter().enumerate() {
            for (old_b, &new_b) in inverse.iter().enumerate() {
                if self.adj[old_a] & (1 << old_b) != 0 {
                    adj[new_a] |= 1 << new_b;
                }
            }
        }
        Self {
            adj,
            name: self.name.clone(),
        }
    }

    // ----- The paper's benchmark patterns (Section 5) -----

    /// `tc`: the triangle (3-clique).
    pub fn triangle() -> Self {
        Self::clique(3)
    }

    /// The `k`-clique (`4cl` is `clique(4)`, `5cl` is `clique(5)`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > MAX_PATTERN_VERTICES`.
    pub fn clique(k: usize) -> Self {
        assert!(k >= 2, "cliques need at least 2 vertices");
        let mut edges = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                edges.push((a, b));
            }
        }
        Self::from_edges_named(k, &edges, format!("{k}-clique"))
    }

    /// `tt`: the tailed triangle of the paper's Figure 1 — a triangle
    /// `{u0, u1, u2}` with a tail `u3` attached to `u0`.
    pub fn tailed_triangle() -> Self {
        Self::from_edges_named(4, &[(0, 1), (0, 2), (1, 2), (0, 3)], "tailed-triangle")
    }

    /// `cyc`: the 4-cycle.
    pub fn four_cycle() -> Self {
        Self::from_edges_named(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], "4-cycle")
    }

    /// `dia`: the diamond (4-clique minus one edge).
    pub fn diamond() -> Self {
        Self::from_edges_named(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)], "diamond")
    }

    /// The wedge (path on three vertices), the second pattern of the
    /// 3-motif census.
    pub fn wedge() -> Self {
        Self::from_edges_named(3, &[(0, 1), (0, 2)], "wedge")
    }

    /// The path on `k` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > MAX_PATTERN_VERTICES`.
    pub fn path(k: usize) -> Self {
        let edges: Vec<_> = (0..k - 1).map(|i| (i, i + 1)).collect();
        Self::from_edges_named(k, &edges, format!("{k}-path"))
    }

    /// The star with `leaves` leaves (`leaves + 1` vertices).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is 0 or the size exceeds the maximum.
    pub fn star(leaves: usize) -> Self {
        assert!(leaves >= 1, "star needs at least one leaf");
        let edges: Vec<_> = (1..=leaves).map(|l| (0, l)).collect();
        Self::from_edges_named(leaves + 1, &edges, format!("{leaves}-star"))
    }

    // ----- extended 5-vertex pattern library -----

    /// The house: a 4-cycle `0-1-2-3` with a triangular roof `0-1-4`.
    pub fn house() -> Self {
        Self::from_edges_named(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)],
            "house",
        )
    }

    /// The bull: a triangle `0-1-2` with horns at `0` and `1`.
    pub fn bull() -> Self {
        Self::from_edges_named(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4)], "bull")
    }

    /// The gem: a 4-path `1-2-3-4` fully connected to an apex `0`.
    pub fn gem() -> Self {
        Self::from_edges_named(
            5,
            &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (2, 3), (3, 4)],
            "gem",
        )
    }

    /// The butterfly (bowtie): two triangles sharing vertex `0`.
    pub fn butterfly() -> Self {
        Self::from_edges_named(
            5,
            &[(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)],
            "butterfly",
        )
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let t = Pattern::triangle();
        assert_eq!(t.size(), 3);
        assert_eq!(t.edge_count(), 3);
        assert!(t.are_adjacent(0, 1) && t.are_adjacent(1, 2) && t.are_adjacent(0, 2));
    }

    #[test]
    fn clique_degrees() {
        let c = Pattern::clique(5);
        for v in 0..5 {
            assert_eq!(c.degree(v), 4);
        }
        assert_eq!(c.edge_count(), 10);
    }

    #[test]
    fn tailed_triangle_matches_figure_1() {
        let tt = Pattern::tailed_triangle();
        // u3 connected only to u0 — the premise of S3 = N(u0) − N(u1) − N(u2).
        assert!(tt.are_adjacent(0, 3));
        assert!(!tt.are_adjacent(1, 3));
        assert!(!tt.are_adjacent(2, 3));
        assert_eq!(tt.degree(0), 3);
    }

    #[test]
    fn diamond_is_4clique_minus_one_edge() {
        let d = Pattern::diamond();
        assert_eq!(d.edge_count(), 5);
        assert!(!d.are_adjacent(1, 3));
    }

    #[test]
    fn four_cycle_has_no_chords() {
        let c = Pattern::four_cycle();
        assert!(!c.are_adjacent(0, 2));
        assert!(!c.are_adjacent(1, 3));
        assert_eq!(c.edge_count(), 4);
    }

    #[test]
    fn relabel_preserves_structure() {
        let tt = Pattern::tailed_triangle();
        let r = tt.relabeled(&[3, 0, 1, 2]);
        assert_eq!(r.edge_count(), tt.edge_count());
        // Old u3 (the tail, degree 1) is new vertex 0.
        assert_eq!(r.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_pattern_rejected() {
        Pattern::from_edges(4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_rejected() {
        Pattern::from_edges(2, &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_relabel_rejected() {
        Pattern::triangle().relabeled(&[0, 0, 1]);
    }

    #[test]
    fn star_and_path_shapes() {
        let s = Pattern::star(4);
        assert_eq!(s.size(), 5);
        assert_eq!(s.degree(0), 4);
        let p = Pattern::path(4);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(1), 2);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Pattern::diamond().to_string(), "diamond");
    }

    #[test]
    fn extended_library_shapes() {
        let house = Pattern::house();
        assert_eq!(house.size(), 5);
        assert_eq!(house.edge_count(), 6);
        assert_eq!(house.degree(4), 2);

        let bull = Pattern::bull();
        assert_eq!(bull.edge_count(), 5);
        assert_eq!(bull.degree(3), 1);
        assert_eq!(bull.degree(4), 1);

        let gem = Pattern::gem();
        assert_eq!(gem.edge_count(), 7);
        assert_eq!(gem.degree(0), 4);

        let bf = Pattern::butterfly();
        assert_eq!(bf.edge_count(), 6);
        assert_eq!(bf.degree(0), 4);
        // Two disjoint wings.
        assert!(!bf.are_adjacent(1, 3) && !bf.are_adjacent(2, 4));
    }

    #[test]
    fn extended_library_automorphism_counts() {
        use crate::automorphisms;
        // House: mirror symmetry only.
        assert_eq!(automorphisms(&Pattern::house()).len(), 2);
        // Bull: swap the two horned triangle vertices (with their horns).
        assert_eq!(automorphisms(&Pattern::bull()).len(), 2);
        // Gem: reverse the path under the apex.
        assert_eq!(automorphisms(&Pattern::gem()).len(), 2);
        // Butterfly: swap within each wing and swap the wings: 2·2·2 = 8.
        assert_eq!(automorphisms(&Pattern::butterfly()).len(), 8);
    }
}
