//! Multi-pattern mining plans.
//!
//! Paper Section 2.1 ("Multi-pattern mining") and Section 4: patterns
//! sharing identical search-tree prefixes can be mined simultaneously;
//! the shared trunk is explored once and the per-pattern trunks diverge as
//! additional branches. The evaluation's `3mc` benchmark mines triangles
//! and wedges together.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{ExecutionPlan, Induced, Pattern};

/// A set of execution plans mined in one pass over the input graph.
///
/// All plans share level 0 (every vertex roots every pattern's tree), so a
/// single root iteration drives all of them; deeper levels are per-pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiPlan {
    name: String,
    plans: Vec<ExecutionPlan>,
}

impl MultiPlan {
    /// Wraps a single pattern as a trivial multi-plan.
    pub fn single(pattern: &Pattern, induced: Induced) -> Self {
        Self {
            name: pattern.name().to_owned(),
            plans: vec![ExecutionPlan::compile(pattern, induced)],
        }
    }

    /// Builds a multi-plan over several patterns.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    pub fn new(name: impl Into<String>, patterns: &[Pattern], induced: Induced) -> Self {
        assert!(
            !patterns.is_empty(),
            "multi-plan needs at least one pattern"
        );
        Self {
            name: name.into(),
            plans: patterns
                .iter()
                .map(|p| ExecutionPlan::compile(p, induced))
                .collect(),
        }
    }

    /// Builds a multi-plan from already-compiled plans (e.g. from
    /// [`ExecutionPlan::compile_optimized`]).
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty.
    pub fn from_plans(name: impl Into<String>, plans: Vec<ExecutionPlan>) -> Self {
        assert!(!plans.is_empty(), "multi-plan needs at least one pattern");
        Self {
            name: name.into(),
            plans,
        }
    }

    /// The 3-motif census (`3mc`): triangles + wedges, vertex-induced.
    pub fn three_motif() -> Self {
        Self::new(
            "3-motif",
            &[Pattern::triangle(), Pattern::wedge()],
            Induced::Vertex,
        )
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constituent plans.
    pub fn plans(&self) -> &[ExecutionPlan] {
        &self.plans
    }

    /// Whether this is a single-pattern plan.
    pub fn is_single(&self) -> bool {
        self.plans.len() == 1
    }

    /// The deepest level across all plans (tree depth of the merged trunk).
    // §11: MultiPlan::new asserts at least one pattern, so `max()` over the
    // plans is never empty; an empty multi-plan is a construction bug.
    #[allow(clippy::expect_used)]
    pub fn max_pattern_size(&self) -> usize {
        self.plans
            .iter()
            .map(ExecutionPlan::pattern_size)
            .max()
            .expect("non-empty")
    }

    /// Number of leading levels at which plans `a` and `b` share identical
    /// actions (the mergeable trunk; at least 1 because level 0 is always
    /// the root iteration... comparing actual scheduled ops).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn shared_prefix_levels(&self, a: usize, b: usize) -> usize {
        let pa = &self.plans[a];
        let pb = &self.plans[b];
        let mut shared = 0;
        let depth = pa.pattern_size().min(pb.pattern_size());
        for level in 0..depth {
            if pa.actions_at(level) == pb.actions_at(level) {
                shared += 1;
            } else {
                break;
            }
        }
        shared
    }
}

impl fmt::Display for MultiPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pattern(s))", self.name, self.plans.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wraps_one_plan() {
        let mp = MultiPlan::single(&Pattern::triangle(), Induced::Vertex);
        assert!(mp.is_single());
        assert_eq!(mp.plans().len(), 1);
        assert_eq!(mp.name(), "3-clique");
    }

    #[test]
    fn three_motif_has_two_plans() {
        let mp = MultiPlan::three_motif();
        assert_eq!(mp.plans().len(), 2);
        assert_eq!(mp.max_pattern_size(), 3);
        assert!(!mp.is_single());
    }

    #[test]
    fn triangle_and_wedge_share_the_root_level() {
        // Both initialize S1 and S2 from N(u0) at level 0; they diverge at
        // level 1 (intersect vs subtract).
        let mp = MultiPlan::three_motif();
        let shared = mp.shared_prefix_levels(0, 1);
        assert_eq!(shared, 1, "expected exactly the root level to merge");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_multiplan_rejected() {
        MultiPlan::new("empty", &[], Induced::Vertex);
    }

    #[test]
    fn display_includes_count() {
        assert!(MultiPlan::three_motif().to_string().contains("2 pattern"));
    }
}
