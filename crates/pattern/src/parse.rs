//! Textual pattern notation.
//!
//! Patterns can be written as edge lists in a compact string form:
//! `"0-1,1-2,0-2"` is the triangle. Named patterns from the paper's
//! benchmark set are also accepted (`"triangle"`, `"4-clique"`, `"tt"`, …),
//! so CLI tools and config files can specify arbitrary mining workloads.

use std::error::Error;
use std::fmt;

use crate::Pattern;

/// Error produced when a pattern string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    message: String,
}

impl ParsePatternError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.message)
    }
}

impl Error for ParsePatternError {}

/// Parses a pattern from either a known name or an edge-list string.
///
/// Accepted names (case-insensitive): `triangle`/`tc`, `wedge`,
/// `4-clique`/`4cl`, `5-clique`/`5cl`, `k-clique` (`k` a digit),
/// `tailed-triangle`/`tt`, `4-cycle`/`cyc`, `diamond`/`dia`,
/// `house`, `bull`, and `k-path` / `k-star`.
///
/// Edge-list strings are comma-separated `a-b` pairs over vertices
/// `0..k`, e.g. `"0-1,1-2,0-2"`.
///
/// # Errors
///
/// Returns [`ParsePatternError`] if the name is unknown, an edge is
/// malformed, or the resulting pattern would be invalid (disconnected,
/// self loop, too large).
///
/// # Example
///
/// ```
/// use fingers_pattern::{parse_pattern, Pattern};
/// assert_eq!(parse_pattern("tc").unwrap(), Pattern::triangle());
/// assert_eq!(parse_pattern("0-1,1-2,0-2").unwrap(), Pattern::triangle());
/// assert!(parse_pattern("0-0").is_err());
/// ```
pub fn parse_pattern(text: &str) -> Result<Pattern, ParsePatternError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ParsePatternError::new("empty pattern string"));
    }
    if let Some(p) = named_pattern(&trimmed.to_ascii_lowercase()) {
        return Ok(p);
    }
    if trimmed.contains('-') && trimmed.chars().any(|c| c.is_ascii_digit()) {
        return parse_edge_list(trimmed);
    }
    Err(ParsePatternError::new(format!(
        "unknown pattern name {trimmed:?} (try an edge list like \"0-1,1-2,0-2\")"
    )))
}

fn named_pattern(name: &str) -> Option<Pattern> {
    match name {
        "triangle" | "tc" | "3-clique" | "3cl" => Some(Pattern::triangle()),
        "wedge" => Some(Pattern::wedge()),
        "tailed-triangle" | "tailed_triangle" | "tt" => Some(Pattern::tailed_triangle()),
        "4-cycle" | "4cycle" | "cyc" | "square" => Some(Pattern::four_cycle()),
        "diamond" | "dia" => Some(Pattern::diamond()),
        "house" => Some(Pattern::house()),
        "bull" => Some(Pattern::bull()),
        "gem" => Some(Pattern::gem()),
        "butterfly" => Some(Pattern::butterfly()),
        _ => {
            // k-clique / kcl / k-path / k-star forms.
            let (k, rest) = split_leading_number(name)?;
            match rest {
                "-clique" | "cl" | "clique" => (2..=8).contains(&k).then(|| Pattern::clique(k)),
                "-path" | "path" => (2..=8).contains(&k).then(|| Pattern::path(k)),
                "-star" | "star" => (1..=7).contains(&k).then(|| Pattern::star(k)),
                _ => None,
            }
        }
    }
}

fn split_leading_number(s: &str) -> Option<(usize, &str)> {
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    let k = digits.parse().ok()?;
    Some((k, &s[digits.len()..]))
}

fn parse_edge_list(text: &str) -> Result<Pattern, ParsePatternError> {
    let mut edges = Vec::new();
    let mut max_vertex = 0usize;
    for part in text.split(',') {
        let part = part.trim();
        let (a, b) = part.split_once('-').ok_or_else(|| {
            ParsePatternError::new(format!("edge {part:?} is not of the form a-b"))
        })?;
        let a: usize = a
            .trim()
            .parse()
            .map_err(|_| ParsePatternError::new(format!("bad vertex {a:?}")))?;
        let b: usize = b
            .trim()
            .parse()
            .map_err(|_| ParsePatternError::new(format!("bad vertex {b:?}")))?;
        if a == b {
            return Err(ParsePatternError::new(format!("self loop {a}-{b}")));
        }
        max_vertex = max_vertex.max(a).max(b);
        edges.push((a, b));
    }
    let k = max_vertex + 1;
    if k > crate::pattern::MAX_PATTERN_VERTICES {
        return Err(ParsePatternError::new(format!(
            "{k} vertices exceeds the supported maximum"
        )));
    }
    // Pattern::from_edges panics on disconnected input; pre-check to return
    // a Result instead.
    let mut adj = vec![Vec::new(); k];
    for &(a, b) in &edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut seen = vec![false; k];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    if !seen.iter().all(|&s| s) {
        return Err(ParsePatternError::new("pattern is disconnected"));
    }
    Ok(Pattern::from_edges_named(k, &edges, text.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_benchmark_patterns() {
        assert_eq!(parse_pattern("tc").unwrap(), Pattern::triangle());
        assert_eq!(parse_pattern("4cl").unwrap(), Pattern::clique(4));
        assert_eq!(parse_pattern("5-clique").unwrap(), Pattern::clique(5));
        assert_eq!(parse_pattern("TT").unwrap(), Pattern::tailed_triangle());
        assert_eq!(parse_pattern("cyc").unwrap(), Pattern::four_cycle());
        assert_eq!(parse_pattern("dia").unwrap(), Pattern::diamond());
        assert_eq!(parse_pattern("wedge").unwrap(), Pattern::wedge());
        assert_eq!(parse_pattern("5-path").unwrap(), Pattern::path(5));
        assert_eq!(parse_pattern("4-star").unwrap(), Pattern::star(4));
    }

    #[test]
    fn extended_named_patterns() {
        assert_eq!(parse_pattern("house").unwrap().size(), 5);
        assert_eq!(parse_pattern("bull").unwrap().size(), 5);
        assert_eq!(parse_pattern("gem").unwrap().size(), 5);
        assert_eq!(parse_pattern("butterfly").unwrap().size(), 5);
    }

    #[test]
    fn edge_list_strings() {
        assert_eq!(parse_pattern("0-1,1-2,0-2").unwrap(), Pattern::triangle());
        assert_eq!(
            parse_pattern(" 0-1 , 1-2 , 2-3 , 3-0 ").unwrap(),
            Pattern::four_cycle()
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("nonsense").is_err());
        assert!(parse_pattern("0-0").is_err());
        assert!(parse_pattern("0-1,x-2").is_err());
        assert!(parse_pattern("0-1,2-3").is_err()); // disconnected
        assert!(parse_pattern("9-clique").is_err()); // too large for named form
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<ParsePatternError>();
        let e = parse_pattern("??").unwrap_err();
        assert!(e.to_string().contains("invalid pattern"));
    }

    /// Round trip: render any benchmark pattern as an edge list string and
    /// parse it back — structures must match.
    #[test]
    fn edge_list_round_trip() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(5),
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::house(),
            Pattern::butterfly(),
        ] {
            let mut parts = Vec::new();
            for a in 0..p.size() {
                for b in (a + 1)..p.size() {
                    if p.are_adjacent(a, b) {
                        parts.push(format!("{a}-{b}"));
                    }
                }
            }
            let text = parts.join(",");
            let parsed = parse_pattern(&text).expect("round trip parses");
            assert_eq!(parsed, p, "{text}");
        }
    }
}
