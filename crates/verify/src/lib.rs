//! Static analysis for the FINGERS reproduction.
//!
//! Two independent arms:
//!
//! 1. **Plan verifier** ([`verify`]): a compiled [`ExecutionPlan`] is a
//!    small set-ISA program, and this module statically proves it sound
//!    before the engine runs it — dataflow soundness (every op reads only
//!    materialized buffers and already-matched neighbor lists, every
//!    target's contributions are exactly Equation (1)'s), restriction
//!    soundness against the enumerated automorphism group (every
//!    non-identity automorphism broken, multiplicity provably 1), and
//!    schedule metadata consistency (first-connected ancestors, bound
//!    sources vs. restriction pairs). Findings come back as
//!    severity-tagged [`PlanDiagnostic`]s in a [`VerifyReport`].
//! 2. **Workspace lint** ([`lint`], shipped as the `fingers-lint` binary):
//!    a text/structural scan enforcing hot-path invariants rustc cannot —
//!    no per-embedding allocation and no unchecked slice indexing inside
//!    annotated hot-path modules without an explicit waiver, plus an
//!    audit that every `clippy::unwrap_used`/`expect_used` allowance
//!    carries its DESIGN.md §11 justification.
//!
//! The verifier is wired in three places: `PlanMiner` debug-asserts every
//! plan it is constructed with, the parallel engine fail-fasts with
//! `EngineError::InvalidPlan` before spawning workers, and the CLI exposes
//! `fingers-mine verify-plan <pattern>` for humans. [`mutate`] supplies
//! the corpus of targeted plan corruptions proving each check fires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
pub mod diagnostics;
pub mod lint;
pub mod mutate;
mod restrictions;

pub use diagnostics::{DiagnosticKind, PlanDiagnostic, Severity, VerifyReport};
pub use mutate::PlanMutation;

use fingers_pattern::{ExecutionPlan, Induced, Pattern};

/// Statically verifies `plan`, returning every diagnostic found.
///
/// A plan with no [`Severity::Error`] diagnostics
/// ([`VerifyReport::is_sound`]) is proven to (a) read only materialized
/// candidate buffers and already-matched neighbor lists, (b) compute each
/// candidate set exactly as Equation (1) defines it for the plan's
/// semantics, and (c) count each embedding exactly once under its
/// symmetry-breaking restrictions.
pub fn verify(plan: &ExecutionPlan) -> VerifyReport {
    let mut diagnostics = Vec::new();
    dataflow::check(plan, &mut diagnostics);
    restrictions::check(plan, &mut diagnostics);
    VerifyReport::new(plan.pattern().to_string(), diagnostics)
}

/// Compiles `pattern` and verifies the result, returning the report as an
/// error if the compiled plan is unsound — the checked front door for
/// callers that want the compile-time gate without a `debug_assert`.
pub fn compile_verified(
    pattern: &Pattern,
    induced: Induced,
) -> Result<ExecutionPlan, VerifyReport> {
    let plan = ExecutionPlan::compile(pattern, induced);
    let report = verify(&plan);
    if report.is_sound() {
        Ok(plan)
    } else {
        Err(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiler_output_is_sound() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::tailed_triangle(),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::wedge(),
            Pattern::house(),
            Pattern::star(4),
        ] {
            for induced in [Induced::Vertex, Induced::Edge] {
                let report = verify(&ExecutionPlan::compile(&p, induced));
                assert!(report.is_sound(), "{p} ({induced:?}):\n{report}");
                assert!(report.diagnostics().is_empty(), "{p}: {report}");
            }
        }
    }

    #[test]
    fn compile_verified_round_trips() {
        let plan = compile_verified(&Pattern::diamond(), Induced::Vertex);
        assert!(plan.is_ok());
    }
}
