//! Structured diagnostics emitted by the plan verifier.
//!
//! Every check in [`crate::verify`] reports through these types rather
//! than panicking or returning `bool`, so callers (the CLI's
//! `verify-plan`, the engine's fail-fast gate, the mutation corpus) can
//! match on *which* invariant broke and render it for humans.

use std::fmt;

/// How bad a [`PlanDiagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only; the plan is still sound.
    Info,
    /// Suspicious but not unsound (e.g. a duplicated restriction, which
    /// wastes a comparison but cannot change counts).
    Warning,
    /// The plan is unsound: executing it may produce wrong counts, read
    /// unmaterialized state, or panic inside the interpreter.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which invariant a diagnostic reports against.
///
/// The kinds partition into the three verifier arms: **structure**
/// (op/buffer well-formedness), **dataflow** (Equation (1) contribution
/// accounting per target), and **restrictions** (symmetry soundness
/// against the enumerated automorphism group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagnosticKind {
    /// An op's target is not a strictly-later level (`target <= level`) or
    /// is past the last level (`target >= k`).
    OpTargetOutOfRange,
    /// An op streams the neighbor list of a level that has not been
    /// matched yet (`Apply.list > level`, or `InitAnti.short >= level`).
    StreamedListAhead,
    /// A level's actions are not sorted by target — terminal count fusion
    /// (`split_last` on the deepest target) relies on that order.
    UnsortedActions,
    /// A target level is never materialized by an `Init`/`InitAnti`.
    MissingMaterialization,
    /// A target level is materialized more than once; the later base op
    /// silently discards earlier contributions.
    DuplicateMaterialization,
    /// The base op for a target executes at a level not adjacent to it,
    /// injecting a neighbor-list factor Equation (1) does not allow.
    WrongMaterializationLevel,
    /// An op reads a target's candidate buffer before the base op that
    /// materializes it has executed.
    UseBeforeInit,
    /// A connected ancestor's neighbor list is never intersected into the
    /// target's candidate set.
    MissingIntersection,
    /// A disconnected ancestor's neighbor list is never subtracted
    /// (vertex-induced only).
    MissingSubtraction,
    /// An op contributes a factor Equation (1) does not call for
    /// (duplicate list, intersection with a non-neighbor, subtraction of a
    /// neighbor, or a stray anti-subtraction).
    SpuriousOp,
    /// An edge-induced plan contains a subtraction or anti-subtraction;
    /// edge-induced semantics never exclude candidates.
    SubtractionInEdgeInduced,
    /// A level has no earlier neighbor, so its candidate set cannot be
    /// seeded from any matched vertex (the order is not connected).
    DisconnectedSchedule,
    /// The schedule list does not line up with the levels (`schedules[j-1]`
    /// must describe target `j` for every `1 <= j < k`).
    ScheduleMismatch,
    /// A schedule's `first_connected` is not the target's first connected
    /// ancestor.
    FirstConnectedMismatch,
    /// A schedule's `lower_bounds` disagree with the restriction pairs
    /// `(a, j)` — the executor would bound candidates by the wrong mapped
    /// vertices.
    BoundScheduleMismatch,
    /// A restriction `(a, b)` does not satisfy `a < b < k`. The executor
    /// reads `mapped[a]` while matching level `b`, so a forward or
    /// self-referential pair reads unmatched state.
    MalformedRestriction,
    /// The same restriction pair appears more than once (harmless for
    /// counts, so only a warning).
    DuplicateRestriction,
    /// Some non-identity automorphism survives every restriction: at least
    /// one embedding is counted more than once (under-restriction).
    UnbrokenAutomorphism,
    /// The restrictions admit fewer rank-orders than `k!/|Aut|`: at least
    /// one embedding is never counted (over-restriction).
    OverRestriction,
}

impl DiagnosticKind {
    /// The severity this kind always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticKind::DuplicateRestriction => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Stable machine-readable name (kebab-case), used by the CLI's
    /// `--mutate` flag and in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticKind::OpTargetOutOfRange => "op-target-out-of-range",
            DiagnosticKind::StreamedListAhead => "streamed-list-ahead",
            DiagnosticKind::UnsortedActions => "unsorted-actions",
            DiagnosticKind::MissingMaterialization => "missing-materialization",
            DiagnosticKind::DuplicateMaterialization => "duplicate-materialization",
            DiagnosticKind::WrongMaterializationLevel => "wrong-materialization-level",
            DiagnosticKind::UseBeforeInit => "use-before-init",
            DiagnosticKind::MissingIntersection => "missing-intersection",
            DiagnosticKind::MissingSubtraction => "missing-subtraction",
            DiagnosticKind::SpuriousOp => "spurious-op",
            DiagnosticKind::SubtractionInEdgeInduced => "subtraction-in-edge-induced",
            DiagnosticKind::DisconnectedSchedule => "disconnected-schedule",
            DiagnosticKind::ScheduleMismatch => "schedule-mismatch",
            DiagnosticKind::FirstConnectedMismatch => "first-connected-mismatch",
            DiagnosticKind::BoundScheduleMismatch => "bound-schedule-mismatch",
            DiagnosticKind::MalformedRestriction => "malformed-restriction",
            DiagnosticKind::DuplicateRestriction => "duplicate-restriction",
            DiagnosticKind::UnbrokenAutomorphism => "unbroken-automorphism",
            DiagnosticKind::OverRestriction => "over-restriction",
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from the verifier: an invariant, where it broke, and a
/// human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDiagnostic {
    /// Which invariant broke.
    pub kind: DiagnosticKind,
    /// The level whose action list the finding is anchored to, if any.
    pub level: Option<usize>,
    /// The target level (`S_target`) the finding concerns, if any.
    pub target: Option<usize>,
    /// Human-readable explanation with the concrete values involved.
    pub message: String,
}

impl PlanDiagnostic {
    /// Builds a diagnostic with no level/target anchor.
    pub fn new(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            level: None,
            target: None,
            message: message.into(),
        }
    }

    /// Anchors the diagnostic to the action list of `level`.
    pub fn at_level(mut self, level: usize) -> Self {
        self.level = Some(level);
        self
    }

    /// Anchors the diagnostic to target buffer `S_target`.
    pub fn for_target(mut self, target: usize) -> Self {
        self.target = Some(target);
        self
    }

    /// The severity, derived from the kind.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity(), self.kind.name())?;
        if let Some(level) = self.level {
            write!(f, " level {level}")?;
        }
        if let Some(target) = self.target {
            write!(f, " S{target}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The verifier's verdict on one plan: every diagnostic found, plus the
/// plan identity it was computed for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    plan_name: String,
    diagnostics: Vec<PlanDiagnostic>,
}

impl VerifyReport {
    pub(crate) fn new(plan_name: String, diagnostics: Vec<PlanDiagnostic>) -> Self {
        Self {
            plan_name,
            diagnostics,
        }
    }

    /// Display name of the plan this report describes.
    pub fn plan_name(&self) -> &str {
        &self.plan_name
    }

    /// Every diagnostic, in the order the checks emitted them.
    pub fn diagnostics(&self) -> &[PlanDiagnostic] {
        &self.diagnostics
    }

    /// `true` iff no diagnostic is at [`Severity::Error`] — warnings and
    /// info do not make a plan unsound.
    pub fn is_sound(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Whether any diagnostic has the given kind.
    pub fn has(&self, kind: DiagnosticKind) -> bool {
        self.diagnostics.iter().any(|d| d.kind == kind)
    }

    /// One-line summary: "sound" or "N errors, M warnings".
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            return "sound (no diagnostics)".to_string();
        }
        let errors = self.error_count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count();
        if errors == 0 {
            format!("sound ({warnings} warning(s))")
        } else {
            format!("unsound ({errors} error(s), {warnings} warning(s))")
        }
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan {}: {}", self.plan_name, self.summary())?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}
