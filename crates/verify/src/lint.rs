//! Workspace hot-path lint: a text/structural scan enforcing invariants
//! rustc and clippy cannot express, because they are repo policy rather
//! than language rules.
//!
//! Three rules (the waiver grammar is documented in DESIGN.md §12):
//!
//! * **hot-path alloc** — in files carrying the `hot-path(alloc)` marker
//!   comment, any allocating call (`Vec::new`, `vec!`, `.collect`,
//!   `.clone`, `.to_vec`, `.to_owned`, `with_capacity`, `Box::new`,
//!   `format!`, `String::new`) must carry an `allow-alloc(reason)` waiver
//!   on the same or preceding line. The mining executor's per-embedding
//!   loop and the set-op kernels are scratch-reusing by design; an
//!   unwaived allocation there is a performance regression the type
//!   system will happily accept.
//! * **hot-path index** — in files carrying the `hot-path(index)` marker,
//!   any `x[...]` indexing expression needs an `allow-index(reason)`
//!   waiver: kernel inner loops must either justify why the index is in
//!   bounds or use iterators/`get`.
//! * **§11 audit** — in every scanned file, an
//!   `allow(clippy::unwrap_used)` / `allow(clippy::expect_used)`
//!   attribute must carry a `§11` justification comment within the two
//!   preceding lines (DESIGN.md §11 is the error-handling policy that
//!   says which layers may panic and why).
//!
//! Concurrency-discipline rules (DESIGN.md §16):
//!
//! * **atomic ordering tag** — every *atomic* `Ordering::` use
//!   (`Relaxed`/`Acquire`/`Release`/`AcqRel`/`SeqCst`; the `cmp::Ordering`
//!   variants are disjoint and never match) needs an
//!   `// ord: <names>(<reason>)` tag on the same or one of the three
//!   preceding lines, where `<names>` is the `+`-joined lowercase list of
//!   every ordering the line uses. The tag is the code-review contract:
//!   the author states *why* that strength suffices.
//! * **relaxed allowlist** — `Ordering::Relaxed` may appear only in the
//!   module allowlist ([`RELAXED_ALLOWLIST`]): counters, latch-only
//!   flags, and gauges whose protocols the model checker exhausts. A new
//!   Relaxed site anywhere else is an error even with a tag — widen the
//!   allowlist consciously, in this file, under review.
//! * **lock tag + static lock order** — in files carrying a
//!   `// lint: lock-order(a < b < c)` marker, every `.lock()` call must
//!   resolve to a `// lock: <name>` tag (same statement, or the comment
//!   block immediately above it) naming a declared lock. While a tagged
//!   guard is live (tracked by brace depth), acquiring a lock of *lower*
//!   rank — directly or by calling a function tagged
//!   `// lock: acquires(<name>)` — is a lock-order violation.
//! * **unsafe island** — `unsafe` outside the audited island files
//!   ([`UNSAFE_ISLANDS`]) is an error; inside an island every unsafe site
//!   must have a `SAFETY` comment (or `# Safety` doc section) within the
//!   eight preceding lines.
//!
//! Test code is out of scope: `tests/`/`benches/` directories are not
//! walked, and `#[cfg(test)]` modules inside scanned files are skipped by
//! brace tracking.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Which lint rule a violation is against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// Unwaived allocation in a `hot-path(alloc)` file.
    HotPathAlloc,
    /// Unwaived slice indexing in a `hot-path(index)` file.
    HotPathIndex,
    /// `allow(clippy::unwrap_used/expect_used)` without a §11 comment.
    AllowNeedsJustification,
    /// Atomic `Ordering::` use without a matching `ord:` tag.
    AtomicOrderingNeedsTag,
    /// `Ordering::Relaxed` in a file outside [`RELAXED_ALLOWLIST`].
    RelaxedOutsideAllowlist,
    /// `.lock()` in a lock-order-marked file without a `lock:` tag.
    LockNeedsTag,
    /// Lock acquired out of the declared `lock-order(...)` ranking.
    LockOrderViolation,
    /// `unsafe` outside the audited [`UNSAFE_ISLANDS`].
    UnsafeOutsideIsland,
    /// `unsafe` inside an island without a nearby `SAFETY` comment.
    UnsafeNeedsSafetyComment,
}

impl LintRule {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::HotPathAlloc => "hot-path-alloc",
            LintRule::HotPathIndex => "hot-path-index",
            LintRule::AllowNeedsJustification => "allow-needs-justification",
            LintRule::AtomicOrderingNeedsTag => "atomic-ordering-needs-tag",
            LintRule::RelaxedOutsideAllowlist => "relaxed-outside-allowlist",
            LintRule::LockNeedsTag => "lock-needs-tag",
            LintRule::LockOrderViolation => "lock-order-violation",
            LintRule::UnsafeOutsideIsland => "unsafe-outside-island",
            LintRule::UnsafeNeedsSafetyComment => "unsafe-needs-safety-comment",
        }
    }
}

/// One lint finding: file, 1-based line, rule, and the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule violated.
    pub rule: LintRule,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.excerpt
        )
    }
}

/// Result of a workspace scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSummary {
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// Every violation, in path order.
    pub violations: Vec<LintViolation>,
}

const ALLOC_PATTERNS: [&str; 10] = [
    "Vec::new(",
    "vec!",
    ".collect(",
    ".clone(",
    ".to_vec(",
    ".to_owned(",
    "with_capacity(",
    "Box::new(",
    "format!(",
    "String::new(",
];

/// Atomic `Ordering` variants and the lowercase name an `ord:` tag must
/// use for them. `cmp::Ordering`'s `Less`/`Equal`/`Greater` are disjoint
/// from this list, so comparator code never trips the atomic rules.
const ATOMIC_ORDERINGS: [(&str, &str); 5] = [
    ("Ordering::Relaxed", "relaxed"),
    ("Ordering::Acquire", "acquire"),
    ("Ordering::Release", "release"),
    ("Ordering::AcqRel", "acqrel"),
    ("Ordering::SeqCst", "seqcst"),
];

/// Files (path suffixes) allowed to use `Ordering::Relaxed`: monotonic
/// stats counters, latch-only flags, and gauge arithmetic whose protocols
/// the `model-check` harnesses exhaust. Everything else must use at least
/// acquire/release — or widen this list consciously, under review.
pub const RELAXED_ALLOWLIST: &[&str] = &[
    "crates/mining/src/cancel.rs",
    "crates/mining/src/chaos.rs",
    "crates/mining/src/gauge.rs",
    "crates/mining/src/model.rs",
    "crates/mining/src/parallel.rs",
    "crates/server/src/daemon.rs",
    "crates/server/src/model.rs",
    "crates/server/src/sched.rs",
    "crates/server/src/session.rs",
    "crates/bench/src/experiments/service_latency.rs",
    "crates/bench/src/experiments/soak_chaos.rs",
];

/// The only files (path suffixes) permitted to contain `unsafe`: the SIMD
/// kernel island and the libc signal-handler island, both audited and both
/// behind safe wrappers.
pub const UNSAFE_ISLANDS: &[&str] = &["crates/setops/src/simd.rs", "crates/server/src/signals.rs"];

fn marker(kind: &str) -> String {
    format!("// lint: hot-path({kind})")
}

fn waiver_pattern(kind: &str) -> String {
    format!("lint: allow-{kind}(")
}

/// Lints one file's source text. `file` labels violations and selects the
/// path-keyed rules (relaxed allowlist, unsafe islands).
pub fn lint_source(file: &str, source: &str) -> Vec<LintViolation> {
    let alloc_hot = source.contains(&marker("alloc"));
    let index_hot = source.contains(&marker("index"));
    let lock_order = parse_lock_order(source);
    let lines: Vec<&str> = source.lines().collect();
    let acquires = match &lock_order {
        Some(order) => collect_acquires_fns(&lines, order),
        None => Vec::new(),
    };
    let in_island = UNSAFE_ISLANDS.iter().any(|s| path_matches(file, s));
    let relaxed_allowed = RELAXED_ALLOWLIST.iter().any(|s| path_matches(file, s));
    let mut out = Vec::new();

    let mut pending_cfg_test = false;
    let mut test_depth: i64 = 0; // > 0 while inside a #[cfg(test)] module
    let mut depth: i64 = 0; // overall brace depth, for guard-scope tracking
    let mut held: Vec<(usize, i64)> = Vec::new(); // (lock rank, depth acquired at)
    for (i, &raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let stripped = strip_strings_and_comments(raw);
        let delta = brace_delta(&stripped);
        depth += delta;
        held.retain(|&(_, d)| d <= depth);

        if test_depth > 0 {
            test_depth += delta;
            continue;
        }
        if pending_cfg_test {
            if stripped.contains("mod ") {
                // `mod tests {` opens the module; a `mod tests;` item
                // (separate file, excluded by the walker) keeps depth 0.
                if delta > 0 {
                    test_depth = delta;
                }
                pending_cfg_test = false;
                continue;
            }
            if !trimmed.starts_with('#') && !trimmed.is_empty() {
                pending_cfg_test = false;
            }
        }
        if stripped.contains("cfg(test") {
            pending_cfg_test = true;
            continue;
        }

        let violation = |rule: LintRule| LintViolation {
            file: file.to_string(),
            line: i + 1,
            rule,
            excerpt: trimmed.trim_end().to_string(),
        };

        if alloc_hot
            && ALLOC_PATTERNS.iter().any(|p| stripped.contains(p))
            && !waived(&lines, i, "alloc")
        {
            out.push(violation(LintRule::HotPathAlloc));
        }
        if index_hot && has_index_site(&stripped) && !waived(&lines, i, "index") {
            out.push(violation(LintRule::HotPathIndex));
        }
        if (stripped.contains("clippy::unwrap_used") || stripped.contains("clippy::expect_used"))
            && stripped.contains("allow")
            && !(i.saturating_sub(2)..=i).any(|j| lines[j].contains("§11"))
        {
            out.push(violation(LintRule::AllowNeedsJustification));
        }

        // Atomic-ordering discipline: every atomic Ordering:: use needs an
        // `ord:` tag naming each ordering the line uses.
        let used: Vec<&str> = ATOMIC_ORDERINGS
            .iter()
            .filter(|(pat, _)| stripped.contains(pat))
            .map(|&(_, name)| name)
            .collect();
        if !used.is_empty() {
            let tagged = (i.saturating_sub(3)..=i)
                .rev()
                .find_map(|j| ord_tag_names(lines[j]))
                .is_some_and(|names| {
                    used.iter()
                        .all(|n| names.split('+').any(|t| t.trim() == *n))
                });
            if !tagged {
                out.push(violation(LintRule::AtomicOrderingNeedsTag));
            }
            if stripped.contains("Ordering::Relaxed") && !relaxed_allowed {
                out.push(violation(LintRule::RelaxedOutsideAllowlist));
            }
        }

        // Lock discipline, active only in lock-order-marked files.
        if let Some(order) = &lock_order {
            if stripped.contains(".lock()") {
                match find_lock_tag(&lines, i).and_then(|n| order.iter().position(|o| *o == n)) {
                    None => out.push(violation(LintRule::LockNeedsTag)),
                    Some(rank) => {
                        if held.iter().any(|&(h, _)| h > rank) {
                            out.push(violation(LintRule::LockOrderViolation));
                        }
                        held.push((rank, depth));
                    }
                }
            }
            for (fn_name, fn_rank) in &acquires {
                if !stripped.contains("fn ")
                    && stripped.contains(&format!("{fn_name}("))
                    && held.iter().any(|&(h, _)| h > *fn_rank)
                {
                    out.push(violation(LintRule::LockOrderViolation));
                }
            }
        }

        // Unsafe islands.
        if has_unsafe_keyword(&stripped) {
            if !in_island {
                out.push(violation(LintRule::UnsafeOutsideIsland));
            } else if !(i.saturating_sub(8)..=i)
                .any(|j| lines[j].contains("SAFETY") || lines[j].contains("# Safety"))
            {
                out.push(violation(LintRule::UnsafeNeedsSafetyComment));
            }
        }
    }
    out
}

/// Path-suffix match with `\` normalized to `/`.
fn path_matches(file: &str, suffix: &str) -> bool {
    file.replace('\\', "/").ends_with(suffix)
}

/// Extracts the `<names>` part of an `// ord: <names>(<reason>)` tag with a
/// nonempty reason, if `line` carries one.
fn ord_tag_names(line: &str) -> Option<&str> {
    let comment = &line[line.find("//")?..];
    let after = &comment[comment.find("ord: ")? + 5..];
    let open = after.find('(')?;
    let names = after[..open].trim();
    let close = after[open + 1..].find(')')?;
    (!names.is_empty() && close > 0).then_some(names)
}

/// Extracts the lock name of an `// lock: <name>` acquisition tag. The
/// `lock-order(...)` marker and `lock: acquires(...)` fn tags don't count.
fn lock_tag_name(line: &str) -> Option<&str> {
    let comment = &line[line.find("//")?..];
    if comment.contains("lock-order(") {
        return None;
    }
    let name = comment[comment.find("lock: ")? + 6..]
        .split_whitespace()
        .next()?;
    (!name.contains('(')).then_some(name)
}

/// The declared lock ranking from a `// lint: lock-order(a < b < c)`
/// marker, lowest rank first.
fn parse_lock_order(source: &str) -> Option<Vec<String>> {
    let at = source.find("// lint: lock-order(")?;
    let inner = &source[at + "// lint: lock-order(".len()..];
    let inner = &inner[..inner.find(')')?];
    Some(inner.split('<').map(|n| n.trim().to_string()).collect())
}

/// Functions tagged `// lock: acquires(<name>)`, mapped to the rank of the
/// lock they take internally (per the declared `order`). The tag must sit
/// on one of the two lines above the `fn` item.
fn collect_acquires_fns(lines: &[&str], order: &[String]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(comment) = line.find("//").map(|c| &line[c..]) else {
            continue;
        };
        let Some(p) = comment.find("lock: acquires(") else {
            continue;
        };
        let after = &comment[p + "lock: acquires(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let Some(rank) = order.iter().position(|o| o == after[..close].trim()) else {
            continue;
        };
        for next in lines.iter().skip(i + 1).take(2) {
            if let Some(fp) = next.find("fn ") {
                let fn_name: String = next[fp + 3..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !fn_name.is_empty() {
                    out.push((fn_name, rank));
                }
                break;
            }
        }
    }
    out
}

/// Resolves the `lock:` tag governing the `.lock()` call on line `i`: the
/// same line, an earlier line of the same multi-line statement, or the
/// contiguous comment block immediately above the statement.
fn find_lock_tag(lines: &[&str], i: usize) -> Option<String> {
    if let Some(n) = lock_tag_name(lines[i]) {
        return Some(n.to_string());
    }
    // Walk up to the statement start: stop at a blank/comment-only line or
    // one ending a previous statement or opening a block.
    let mut j = i;
    for _ in 0..12 {
        if j == 0 {
            break;
        }
        let prev = strip_strings_and_comments(lines[j - 1]);
        let t = prev.trim();
        if t.is_empty() || t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
            break;
        }
        j -= 1;
        if let Some(n) = lock_tag_name(lines[j]) {
            return Some(n.to_string());
        }
    }
    // Contiguous comment block above the statement start.
    while j > 0 && lines[j - 1].trim_start().starts_with("//") {
        j -= 1;
        if let Some(n) = lock_tag_name(lines[j]) {
            return Some(n.to_string());
        }
    }
    None
}

/// Whether the stripped line contains the `unsafe` keyword (word-bounded,
/// so `unsafe_code` attributes don't match).
fn has_unsafe_keyword(stripped: &str) -> bool {
    let bytes = stripped.as_bytes();
    let mut from = 0;
    while let Some(p) = stripped[from..].find("unsafe") {
        let start = from + p;
        let end = start + "unsafe".len();
        let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let pre_ok = start == 0 || !ident(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !ident(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Whether line `i` (or the line above) waives rule `kind` with a
/// nonempty reason.
fn waived(lines: &[&str], i: usize, kind: &str) -> bool {
    let pat = waiver_pattern(kind);
    let check = |l: &str| {
        l.find(&pat).is_some_and(|p| {
            let rest = &l[p + pat.len()..];
            rest.find(')').is_some_and(|close| close > 0)
        })
    };
    check(lines[i]) || (i > 0 && check(lines[i - 1]))
}

/// Drops string-literal contents and everything after a `//` comment
/// opener, so patterns never match inside strings or prose.
fn strip_strings_and_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(' ');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Net `{`/`}` balance of an already-stripped line.
fn brace_delta(stripped: &str) -> i64 {
    stripped.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Does the stripped line contain an indexing expression `x[...]`?
/// A `[` counts when the previous non-space token is an identifier, a
/// closing `)`/`]`, or `?` — which excludes array literals `&[..]`,
/// attributes `#[..]`, macro brackets `vec![..]`, and slice *types*
/// `&mut [T]`.
fn has_index_site(stripped: &str) -> bool {
    let bytes = stripped.as_bytes();
    if stripped.trim_start().starts_with('#') {
        return false;
    }
    for (pos, &c) in bytes.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let Some(prev_at) = bytes[..pos].iter().rposition(|&p| p != b' ') else {
            continue;
        };
        let prev = bytes[prev_at];
        if prev == b')' || prev == b']' || prev == b'?' {
            return true;
        }
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            // Extract the word; type-position keywords are not receivers.
            let start = bytes[..=prev_at]
                .iter()
                .rposition(|&p| !(p.is_ascii_alphanumeric() || p == b'_'))
                .map_or(0, |s| s + 1);
            let word = &stripped[start..=prev_at];
            // A lifetime (`&'a [u32]`) is a type position, not a receiver.
            let is_lifetime = start > 0 && bytes[start - 1] == b'\'';
            if !is_lifetime && !matches!(word, "mut" | "dyn" | "impl" | "in" | "as") {
                return true;
            }
        }
    }
    false
}

/// Recursively collects `.rs` files under `root/crates` and `root/src`,
/// skipping `target`, `vendor`, `tests`, and `benches` directories, and
/// lints each one. Files that are not valid UTF-8 are skipped.
pub fn lint_workspace(root: &Path) -> io::Result<LintSummary> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            continue;
        };
        files_scanned += 1;
        violations.extend(lint_source(&path.to_string_lossy(), &source));
    }
    Ok(LintSummary {
        files_scanned,
        violations,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !matches!(name.as_ref(), "target" | "vendor" | "tests" | "benches") {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(kind: &str, body: &str) -> String {
        format!("{}\n{body}\n", marker(kind))
    }

    #[test]
    fn unmarked_files_allow_anything() {
        let src = "fn f() -> Vec<u32> { let v = Vec::new(); v }\n";
        assert!(lint_source("a.rs", src).is_empty());
    }

    #[test]
    fn marked_file_flags_allocation() {
        let src = hot("alloc", "fn f() { let v: Vec<u32> = Vec::new(); }");
        let vs = lint_source("a.rs", &src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, LintRule::HotPathAlloc);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn waiver_on_same_or_previous_line_suppresses() {
        let same = hot(
            "alloc",
            &format!("let v = Vec::new(); {}one-time)", waiver_pattern("alloc")),
        );
        assert!(lint_source("a.rs", &same).is_empty());
        let prev = hot(
            "alloc",
            &format!(
                "// {}scratch)\nlet v = Vec::new();",
                waiver_pattern("alloc")
            ),
        );
        assert!(lint_source("a.rs", &prev).is_empty());
        // An empty reason does not count as a waiver.
        let empty = hot(
            "alloc",
            &format!("let v = Vec::new(); {})", waiver_pattern("alloc")),
        );
        assert_eq!(lint_source("a.rs", &empty).len(), 1);
    }

    #[test]
    fn index_rule_flags_real_indexing_only() {
        let src = hot(
            "index",
            "fn f(a: &[u32], i: usize) -> u32 { a[i] }\n\
             fn g() -> &'static [u32] { &[1, 2] }\n\
             fn h(out: &mut [u32]) {}\n\
             #[derive(Debug)]\n\
             struct S;",
        );
        let vs = lint_source("a.rs", &src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].line, 2);
        assert_eq!(vs[0].rule, LintRule::HotPathIndex);
    }

    #[test]
    fn strings_and_comments_do_not_match() {
        let src = hot("alloc", "let s = \"Vec::new()\"; // and .collect( in prose");
        assert!(lint_source("a.rs", &src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = hot(
            "alloc",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let v: Vec<u32> = Vec::new(); }\n}",
        );
        assert!(lint_source("a.rs", &src).is_empty());
    }

    #[test]
    fn clippy_allow_requires_section_11_comment() {
        let bad = "#[allow(clippy::expect_used)]\nfn f() {}\n";
        let vs = lint_source("a.rs", bad);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, LintRule::AllowNeedsJustification);
        let good = "// §11: invariant guaranteed by the compiler.\n#[allow(clippy::expect_used)]\nfn f() {}\n";
        assert!(lint_source("a.rs", good).is_empty());
    }

    #[test]
    fn doc_comments_are_ignored() {
        let src = hot(
            "alloc",
            "/// Call `.collect()` to gather results.\nfn f() {}",
        );
        assert!(lint_source("a.rs", &src).is_empty());
    }

    // --- concurrency-discipline rules ---
    //
    // Fixtures are built from per-line string arrays: the linter's string
    // stripper is line-based, so a fixture written as one multi-line
    // literal would leak its braces into this very file's scan.

    /// A file path inside the relaxed allowlist, for fixtures that should
    /// only exercise the tag rule.
    const ALLOWED: &str = "crates/mining/src/gauge.rs";

    fn fixture(lines: &[&str]) -> String {
        lines.join("\n")
    }

    #[test]
    fn atomic_ordering_without_tag_is_flagged() {
        let src = fixture(&["fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }"]);
        let vs = lint_source("a.rs", &src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::AtomicOrderingNeedsTag);
    }

    #[test]
    fn ord_tag_must_name_every_ordering_on_the_line() {
        let good = fixture(&[
            "// ord: release(publishes the plan)",
            "fn f(a: &AtomicBool) { a.store(true, Ordering::Release); }",
        ]);
        assert!(lint_source("a.rs", &good).is_empty());
        let wrong_name = fixture(&[
            "// ord: relaxed(stale tag)",
            "fn f(a: &AtomicBool) { a.store(true, Ordering::Release); }",
        ]);
        let vs = lint_source("a.rs", &wrong_name);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::AtomicOrderingNeedsTag);
        let both = fixture(&[
            "// ord: relaxed+relaxed(saturating decrement)",
            "fn f(a: &AtomicU64) { a.fetch_update(Ordering::Relaxed, Ordering::Relaxed, Some); }",
        ]);
        assert!(lint_source(ALLOWED, &both).is_empty());
        // An empty reason does not count as a tag.
        let empty = fixture(&[
            "// ord: release()",
            "fn f(a: &AtomicBool) { a.store(true, Ordering::Release); }",
        ]);
        assert_eq!(lint_source("a.rs", &empty).len(), 1);
    }

    #[test]
    fn cmp_ordering_is_not_mistaken_for_atomic_ordering() {
        // merge.rs / simd.rs shape: comparator code, no atomics anywhere.
        let src = fixture(&[
            "fn f(a: u32, b: u32) -> Ordering {",
            "    match a.cmp(&b) {",
            "        Ordering::Less => Ordering::Less,",
            "        Ordering::Equal => Ordering::Equal,",
            "        Ordering::Greater => Ordering::Greater,",
            "    }",
            "}",
        ]);
        assert!(lint_source("crates/setops/src/merge.rs", &src).is_empty());
    }

    #[test]
    fn relaxed_outside_allowlist_is_flagged_even_with_tag() {
        let src = fixture(&[
            "// ord: relaxed(but this file may not use relaxed at all)",
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }",
        ]);
        let vs = lint_source("crates/graph/src/csr.rs", &src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::RelaxedOutsideAllowlist);
        assert!(lint_source(ALLOWED, &src).is_empty());
    }

    #[test]
    fn lock_in_marked_file_needs_a_declared_tag() {
        let untagged = fixture(&[
            "// lint: lock-order(queue < workers)",
            "fn f(m: &Mutex<u32>) { let g = m.lock(); }",
        ]);
        let vs = lint_source("a.rs", &untagged);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::LockNeedsTag);
        // A tag naming an undeclared lock does not count.
        let undeclared = fixture(&[
            "// lint: lock-order(queue < workers)",
            "fn f(m: &Mutex<u32>) {",
            "    // lock: cache",
            "    let g = m.lock();",
            "}",
        ]);
        let vs = lint_source("a.rs", &undeclared);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::LockNeedsTag);
        // Unmarked files are exempt: the rule is opt-in per file.
        let unmarked = fixture(&["fn f(m: &Mutex<u32>) { let g = m.lock(); }"]);
        assert!(lint_source("a.rs", &unmarked).is_empty());
    }

    #[test]
    fn lock_tag_resolves_across_multiline_chains() {
        let src = fixture(&[
            "// lint: lock-order(queue < workers)",
            "fn f(s: &S) {",
            "    // lock: queue",
            "    let g = s",
            "        .queue",
            "        .lock()",
            "        .unwrap_or_else(PoisonError::into_inner);",
            "}",
        ]);
        assert!(lint_source("a.rs", &src).is_empty());
    }

    #[test]
    fn out_of_order_acquisition_is_flagged() {
        let src = fixture(&[
            "// lint: lock-order(queue < workers)",
            "fn f(s: &S) {",
            "    // lock: workers",
            "    let w = s.workers.lock();",
            "    // lock: queue",
            "    let q = s.queue.lock();",
            "}",
        ]);
        let vs = lint_source("a.rs", &src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::LockOrderViolation);
        // The declared order is fine, and so is release by scope end.
        let ordered = fixture(&[
            "// lint: lock-order(queue < workers)",
            "fn f(s: &S) {",
            "    {",
            "        // lock: queue",
            "        let q = s.queue.lock();",
            "    }",
            "    // lock: workers",
            "    let w = s.workers.lock();",
            "    // lock: workers",
            "    let w2 = s.other_workers.lock();",
            "}",
        ]);
        assert!(lint_source("a.rs", &ordered).is_empty());
    }

    #[test]
    fn acquires_tagged_fn_called_under_higher_lock_is_flagged() {
        let src = fixture(&[
            "// lint: lock-order(queue < workers)",
            "// lock: acquires(queue)",
            "fn requeue(s: &S) {",
            "    // lock: queue",
            "    s.queue.lock().push(1);",
            "}",
            "fn f(s: &S) {",
            "    // lock: workers",
            "    let w = s.workers.lock();",
            "    requeue(s);",
            "}",
        ]);
        let vs = lint_source("a.rs", &src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::LockOrderViolation);
    }

    #[test]
    fn unsafe_outside_island_is_flagged() {
        let src = fixture(&["fn f(p: *const u8) -> u8 { unsafe { *p } }"]);
        let vs = lint_source("crates/graph/src/csr.rs", &src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::UnsafeOutsideIsland);
        // The forbid/deny attribute's `unsafe_code` token never matches.
        let attr = fixture(&["#![forbid(unsafe_code)]", "fn f() {}"]);
        assert!(lint_source("a.rs", &attr).is_empty());
    }

    #[test]
    fn island_unsafe_needs_a_safety_comment() {
        let island = "crates/setops/src/simd.rs";
        let bare = fixture(&["fn f(p: *const u8) -> u8 { unsafe { *p } }"]);
        let vs = lint_source(island, &bare);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, LintRule::UnsafeNeedsSafetyComment);
        let justified = fixture(&[
            "// SAFETY: caller guarantees p is valid for reads.",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }",
        ]);
        assert!(lint_source(island, &justified).is_empty());
    }
}
