//! Workspace hot-path lint: a text/structural scan enforcing invariants
//! rustc and clippy cannot express, because they are repo policy rather
//! than language rules.
//!
//! Three rules (the waiver grammar is documented in DESIGN.md §12):
//!
//! * **hot-path alloc** — in files carrying the `hot-path(alloc)` marker
//!   comment, any allocating call (`Vec::new`, `vec!`, `.collect`,
//!   `.clone`, `.to_vec`, `.to_owned`, `with_capacity`, `Box::new`,
//!   `format!`, `String::new`) must carry an `allow-alloc(reason)` waiver
//!   on the same or preceding line. The mining executor's per-embedding
//!   loop and the set-op kernels are scratch-reusing by design; an
//!   unwaived allocation there is a performance regression the type
//!   system will happily accept.
//! * **hot-path index** — in files carrying the `hot-path(index)` marker,
//!   any `x[...]` indexing expression needs an `allow-index(reason)`
//!   waiver: kernel inner loops must either justify why the index is in
//!   bounds or use iterators/`get`.
//! * **§11 audit** — in every scanned file, an
//!   `allow(clippy::unwrap_used)` / `allow(clippy::expect_used)`
//!   attribute must carry a `§11` justification comment within the two
//!   preceding lines (DESIGN.md §11 is the error-handling policy that
//!   says which layers may panic and why).
//!
//! Test code is out of scope: `tests/`/`benches/` directories are not
//! walked, and `#[cfg(test)]` modules inside scanned files are skipped by
//! brace tracking.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Which lint rule a violation is against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// Unwaived allocation in a `hot-path(alloc)` file.
    HotPathAlloc,
    /// Unwaived slice indexing in a `hot-path(index)` file.
    HotPathIndex,
    /// `allow(clippy::unwrap_used/expect_used)` without a §11 comment.
    AllowNeedsJustification,
}

impl LintRule {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::HotPathAlloc => "hot-path-alloc",
            LintRule::HotPathIndex => "hot-path-index",
            LintRule::AllowNeedsJustification => "allow-needs-justification",
        }
    }
}

/// One lint finding: file, 1-based line, rule, and the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule violated.
    pub rule: LintRule,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.excerpt
        )
    }
}

/// Result of a workspace scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSummary {
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// Every violation, in path order.
    pub violations: Vec<LintViolation>,
}

const ALLOC_PATTERNS: [&str; 10] = [
    "Vec::new(",
    "vec!",
    ".collect(",
    ".clone(",
    ".to_vec(",
    ".to_owned(",
    "with_capacity(",
    "Box::new(",
    "format!(",
    "String::new(",
];

fn marker(kind: &str) -> String {
    format!("// lint: hot-path({kind})")
}

fn waiver_pattern(kind: &str) -> String {
    format!("lint: allow-{kind}(")
}

/// Lints one file's source text. `file` is only used to label violations.
pub fn lint_source(file: &str, source: &str) -> Vec<LintViolation> {
    let alloc_hot = source.contains(&marker("alloc"));
    let index_hot = source.contains(&marker("index"));
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let mut pending_cfg_test = false;
    let mut test_depth: i64 = 0; // > 0 while inside a #[cfg(test)] module
    for (i, &raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let stripped = strip_strings_and_comments(raw);

        if test_depth > 0 {
            test_depth += brace_delta(&stripped);
            continue;
        }
        if pending_cfg_test {
            if stripped.contains("mod ") {
                let delta = brace_delta(&stripped);
                // `mod tests {` opens the module; a `mod tests;` item
                // (separate file, excluded by the walker) keeps depth 0.
                if delta > 0 {
                    test_depth = delta;
                }
                pending_cfg_test = false;
                continue;
            }
            if !trimmed.starts_with('#') && !trimmed.is_empty() {
                pending_cfg_test = false;
            }
        }
        if stripped.contains("cfg(test") {
            pending_cfg_test = true;
            continue;
        }

        let violation = |rule: LintRule| LintViolation {
            file: file.to_string(),
            line: i + 1,
            rule,
            excerpt: trimmed.trim_end().to_string(),
        };

        if alloc_hot
            && ALLOC_PATTERNS.iter().any(|p| stripped.contains(p))
            && !waived(&lines, i, "alloc")
        {
            out.push(violation(LintRule::HotPathAlloc));
        }
        if index_hot && has_index_site(&stripped) && !waived(&lines, i, "index") {
            out.push(violation(LintRule::HotPathIndex));
        }
        if (stripped.contains("clippy::unwrap_used") || stripped.contains("clippy::expect_used"))
            && stripped.contains("allow")
            && !(i.saturating_sub(2)..=i).any(|j| lines[j].contains("§11"))
        {
            out.push(violation(LintRule::AllowNeedsJustification));
        }
    }
    out
}

/// Whether line `i` (or the line above) waives rule `kind` with a
/// nonempty reason.
fn waived(lines: &[&str], i: usize, kind: &str) -> bool {
    let pat = waiver_pattern(kind);
    let check = |l: &str| {
        l.find(&pat).is_some_and(|p| {
            let rest = &l[p + pat.len()..];
            rest.find(')').is_some_and(|close| close > 0)
        })
    };
    check(lines[i]) || (i > 0 && check(lines[i - 1]))
}

/// Drops string-literal contents and everything after a `//` comment
/// opener, so patterns never match inside strings or prose.
fn strip_strings_and_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(' ');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Net `{`/`}` balance of an already-stripped line.
fn brace_delta(stripped: &str) -> i64 {
    stripped.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Does the stripped line contain an indexing expression `x[...]`?
/// A `[` counts when the previous non-space token is an identifier, a
/// closing `)`/`]`, or `?` — which excludes array literals `&[..]`,
/// attributes `#[..]`, macro brackets `vec![..]`, and slice *types*
/// `&mut [T]`.
fn has_index_site(stripped: &str) -> bool {
    let bytes = stripped.as_bytes();
    if stripped.trim_start().starts_with('#') {
        return false;
    }
    for (pos, &c) in bytes.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let Some(prev_at) = bytes[..pos].iter().rposition(|&p| p != b' ') else {
            continue;
        };
        let prev = bytes[prev_at];
        if prev == b')' || prev == b']' || prev == b'?' {
            return true;
        }
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            // Extract the word; type-position keywords are not receivers.
            let start = bytes[..=prev_at]
                .iter()
                .rposition(|&p| !(p.is_ascii_alphanumeric() || p == b'_'))
                .map_or(0, |s| s + 1);
            let word = &stripped[start..=prev_at];
            // A lifetime (`&'a [u32]`) is a type position, not a receiver.
            let is_lifetime = start > 0 && bytes[start - 1] == b'\'';
            if !is_lifetime && !matches!(word, "mut" | "dyn" | "impl" | "in" | "as") {
                return true;
            }
        }
    }
    false
}

/// Recursively collects `.rs` files under `root/crates` and `root/src`,
/// skipping `target`, `vendor`, `tests`, and `benches` directories, and
/// lints each one. Files that are not valid UTF-8 are skipped.
pub fn lint_workspace(root: &Path) -> io::Result<LintSummary> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let Ok(source) = std::fs::read_to_string(path) else {
            continue;
        };
        files_scanned += 1;
        violations.extend(lint_source(&path.to_string_lossy(), &source));
    }
    Ok(LintSummary {
        files_scanned,
        violations,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !matches!(name.as_ref(), "target" | "vendor" | "tests" | "benches") {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(kind: &str, body: &str) -> String {
        format!("{}\n{body}\n", marker(kind))
    }

    #[test]
    fn unmarked_files_allow_anything() {
        let src = "fn f() -> Vec<u32> { let v = Vec::new(); v }\n";
        assert!(lint_source("a.rs", src).is_empty());
    }

    #[test]
    fn marked_file_flags_allocation() {
        let src = hot("alloc", "fn f() { let v: Vec<u32> = Vec::new(); }");
        let vs = lint_source("a.rs", &src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, LintRule::HotPathAlloc);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn waiver_on_same_or_previous_line_suppresses() {
        let same = hot(
            "alloc",
            &format!("let v = Vec::new(); {}one-time)", waiver_pattern("alloc")),
        );
        assert!(lint_source("a.rs", &same).is_empty());
        let prev = hot(
            "alloc",
            &format!(
                "// {}scratch)\nlet v = Vec::new();",
                waiver_pattern("alloc")
            ),
        );
        assert!(lint_source("a.rs", &prev).is_empty());
        // An empty reason does not count as a waiver.
        let empty = hot(
            "alloc",
            &format!("let v = Vec::new(); {})", waiver_pattern("alloc")),
        );
        assert_eq!(lint_source("a.rs", &empty).len(), 1);
    }

    #[test]
    fn index_rule_flags_real_indexing_only() {
        let src = hot(
            "index",
            "fn f(a: &[u32], i: usize) -> u32 { a[i] }\n\
             fn g() -> &'static [u32] { &[1, 2] }\n\
             fn h(out: &mut [u32]) {}\n\
             #[derive(Debug)]\n\
             struct S;",
        );
        let vs = lint_source("a.rs", &src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].line, 2);
        assert_eq!(vs[0].rule, LintRule::HotPathIndex);
    }

    #[test]
    fn strings_and_comments_do_not_match() {
        let src = hot("alloc", "let s = \"Vec::new()\"; // and .collect( in prose");
        assert!(lint_source("a.rs", &src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = hot(
            "alloc",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let v: Vec<u32> = Vec::new(); }\n}",
        );
        assert!(lint_source("a.rs", &src).is_empty());
    }

    #[test]
    fn clippy_allow_requires_section_11_comment() {
        let bad = "#[allow(clippy::expect_used)]\nfn f() {}\n";
        let vs = lint_source("a.rs", bad);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, LintRule::AllowNeedsJustification);
        let good = "// §11: invariant guaranteed by the compiler.\n#[allow(clippy::expect_used)]\nfn f() {}\n";
        assert!(lint_source("a.rs", good).is_empty());
    }

    #[test]
    fn doc_comments_are_ignored() {
        let src = hot(
            "alloc",
            "/// Call `.collect()` to gather results.\nfn f() {}",
        );
        assert!(lint_source("a.rs", &src).is_empty());
    }
}
