//! Targeted plan mutations: each one corrupts a compiled
//! [`ExecutionPlan`] in a specific way and names the diagnostic kind the
//! verifier must flag it with.
//!
//! This is the negative half of the verifier's test story (the positive
//! half is "every compiler-produced plan verifies clean"): a verifier that
//! accepts everything would pass the clean corpus, so each check is
//! proven live by a mutation it alone catches. The CLI's
//! `verify-plan --mutate <name>` uses the same corpus to demonstrate the
//! nonzero exit path.

use fingers_pattern::{ExecutionPlan, Induced, LevelSchedule, Pattern, PlanOp};
use fingers_setops::SetOpKind;

use crate::diagnostics::DiagnosticKind;

/// A named, deterministic corruption of a compiled plan.
///
/// `apply` returns `None` when the plan has no site for the mutation
/// (e.g. [`PlanMutation::DropSubtract`] on a clique plan, which has no
/// subtractions); the corpus tests skip inapplicable mutations per plan
/// but assert every mutation applies to at least one benchmark plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PlanMutation {
    /// Removes a non-redundant symmetry restriction (one not implied by
    /// the transitive closure of the rest), reviving an automorphism.
    DropRestriction,
    /// Swaps an op that streams its own level's neighbor list down to an
    /// earlier level, where that list is not matched yet.
    SwapOpsAcrossLevels,
    /// Retargets an `Apply` at a buffer whose materializing base op
    /// executes later — the op reads a not-yet-materialized buffer.
    RetargetOp,
    /// Corrupts a schedule's lower-bound sources so the executor would
    /// bound candidates by the wrong mapped vertex.
    CorruptBoundSource,
    /// Deletes a base op, leaving its target never materialized.
    DropInit,
    /// Duplicates a base op, silently discarding prior contributions.
    DuplicateInit,
    /// Deletes an intersection, dropping a connected ancestor's factor.
    DropIntersect,
    /// Deletes a subtraction, dropping a disconnected ancestor's factor.
    DropSubtract,
    /// Flips an intersection into a subtraction.
    FlipOpKind,
    /// Reverses a level's action list, breaking the sorted-by-target
    /// order terminal count fusion relies on.
    UnsortActions,
    /// Reverses a restriction pair to `(b, a)` with `b > a`.
    ReverseRestriction,
    /// Repeats a restriction pair (harmless; must only warn).
    DuplicateRestriction,
    /// Adds a restriction pair outside the transitive closure, losing
    /// embeddings (over-restriction).
    AddRestriction,
    /// Corrupts a schedule's claimed target level.
    CorruptScheduleTarget,
    /// Corrupts a schedule's first-connected ancestor.
    CorruptFirstConnected,
    /// Retargets an op at its own (already-matched) level.
    RetargetPast,
}

impl PlanMutation {
    /// Every mutation, in a stable order.
    pub const ALL: [PlanMutation; 16] = [
        PlanMutation::DropRestriction,
        PlanMutation::SwapOpsAcrossLevels,
        PlanMutation::RetargetOp,
        PlanMutation::CorruptBoundSource,
        PlanMutation::DropInit,
        PlanMutation::DuplicateInit,
        PlanMutation::DropIntersect,
        PlanMutation::DropSubtract,
        PlanMutation::FlipOpKind,
        PlanMutation::UnsortActions,
        PlanMutation::ReverseRestriction,
        PlanMutation::DuplicateRestriction,
        PlanMutation::AddRestriction,
        PlanMutation::CorruptScheduleTarget,
        PlanMutation::CorruptFirstConnected,
        PlanMutation::RetargetPast,
    ];

    /// Stable kebab-case name (the CLI's `--mutate` argument).
    pub fn name(self) -> &'static str {
        match self {
            PlanMutation::DropRestriction => "drop-restriction",
            PlanMutation::SwapOpsAcrossLevels => "swap-ops-across-levels",
            PlanMutation::RetargetOp => "retarget-op",
            PlanMutation::CorruptBoundSource => "corrupt-bound-source",
            PlanMutation::DropInit => "drop-init",
            PlanMutation::DuplicateInit => "duplicate-init",
            PlanMutation::DropIntersect => "drop-intersect",
            PlanMutation::DropSubtract => "drop-subtract",
            PlanMutation::FlipOpKind => "flip-op-kind",
            PlanMutation::UnsortActions => "unsort-actions",
            PlanMutation::ReverseRestriction => "reverse-restriction",
            PlanMutation::DuplicateRestriction => "duplicate-restriction",
            PlanMutation::AddRestriction => "add-restriction",
            PlanMutation::CorruptScheduleTarget => "corrupt-schedule-target",
            PlanMutation::CorruptFirstConnected => "corrupt-first-connected",
            PlanMutation::RetargetPast => "retarget-past",
        }
    }

    /// Parses a [`PlanMutation::name`] back to the mutation.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The diagnostic kind the verifier must report for this mutation
    /// (given the plan's semantics — flipping an op kind surfaces
    /// differently in edge-induced plans).
    pub fn expected_kind(self, induced: Induced) -> DiagnosticKind {
        match self {
            PlanMutation::DropRestriction => DiagnosticKind::UnbrokenAutomorphism,
            PlanMutation::SwapOpsAcrossLevels => DiagnosticKind::StreamedListAhead,
            PlanMutation::RetargetOp => DiagnosticKind::UseBeforeInit,
            PlanMutation::CorruptBoundSource => DiagnosticKind::BoundScheduleMismatch,
            PlanMutation::DropInit => DiagnosticKind::MissingMaterialization,
            PlanMutation::DuplicateInit => DiagnosticKind::DuplicateMaterialization,
            PlanMutation::DropIntersect => DiagnosticKind::MissingIntersection,
            PlanMutation::DropSubtract => DiagnosticKind::MissingSubtraction,
            PlanMutation::FlipOpKind => match induced {
                Induced::Vertex => DiagnosticKind::SpuriousOp,
                Induced::Edge => DiagnosticKind::SubtractionInEdgeInduced,
            },
            PlanMutation::UnsortActions => DiagnosticKind::UnsortedActions,
            PlanMutation::ReverseRestriction => DiagnosticKind::MalformedRestriction,
            PlanMutation::DuplicateRestriction => DiagnosticKind::DuplicateRestriction,
            PlanMutation::AddRestriction => DiagnosticKind::OverRestriction,
            PlanMutation::CorruptScheduleTarget => DiagnosticKind::ScheduleMismatch,
            PlanMutation::CorruptFirstConnected => DiagnosticKind::FirstConnectedMismatch,
            PlanMutation::RetargetPast => DiagnosticKind::OpTargetOutOfRange,
        }
    }

    /// Applies the mutation to a copy of `plan`, or `None` when the plan
    /// has no site for it.
    pub fn apply(self, plan: &ExecutionPlan) -> Option<ExecutionPlan> {
        let mut parts = Parts::of(plan);
        match self {
            PlanMutation::DropRestriction => drop_restriction(&mut parts)?,
            PlanMutation::SwapOpsAcrossLevels => swap_ops_across_levels(&mut parts)?,
            PlanMutation::RetargetOp => retarget_op(&mut parts)?,
            PlanMutation::CorruptBoundSource => corrupt_bound_source(&mut parts)?,
            PlanMutation::DropInit => drop_init(&mut parts)?,
            PlanMutation::DuplicateInit => duplicate_init(&mut parts)?,
            PlanMutation::DropIntersect => drop_apply(&mut parts, SetOpKind::Intersect)?,
            PlanMutation::DropSubtract => drop_apply(&mut parts, SetOpKind::Subtract)?,
            PlanMutation::FlipOpKind => flip_op_kind(&mut parts)?,
            PlanMutation::UnsortActions => unsort_actions(&mut parts)?,
            PlanMutation::ReverseRestriction => reverse_restriction(&mut parts)?,
            PlanMutation::DuplicateRestriction => duplicate_restriction(&mut parts)?,
            PlanMutation::AddRestriction => add_restriction(&mut parts)?,
            PlanMutation::CorruptScheduleTarget => corrupt_schedule_target(&mut parts)?,
            PlanMutation::CorruptFirstConnected => corrupt_first_connected(&mut parts)?,
            PlanMutation::RetargetPast => retarget_past(&mut parts)?,
        }
        Some(parts.rebuild())
    }
}

impl std::fmt::Display for PlanMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every applicable mutation of `plan`, paired with its corrupted copy.
pub fn targeted_mutations(plan: &ExecutionPlan) -> Vec<(PlanMutation, ExecutionPlan)> {
    PlanMutation::ALL
        .into_iter()
        .filter_map(|m| m.apply(plan).map(|p| (m, p)))
        .collect()
}

/// The disassembled plan a mutation edits before reassembly through
/// [`ExecutionPlan::from_raw_parts`].
struct Parts {
    pattern: Pattern,
    induced: Induced,
    actions: Vec<Vec<PlanOp>>,
    schedules: Vec<LevelSchedule>,
    restrictions: Vec<(usize, usize)>,
}

impl Parts {
    fn of(plan: &ExecutionPlan) -> Self {
        let k = plan.pattern_size();
        Self {
            pattern: plan.pattern().clone(),
            induced: plan.induced(),
            actions: (0..k).map(|l| plan.actions_at(l).to_vec()).collect(),
            schedules: plan.schedules().to_vec(),
            restrictions: plan.restrictions().to_vec(),
        }
    }

    fn rebuild(self) -> ExecutionPlan {
        ExecutionPlan::from_raw_parts(
            self.pattern,
            self.induced,
            self.actions,
            self.schedules,
            self.restrictions,
        )
    }
}

fn with_target(op: PlanOp, target: usize) -> PlanOp {
    match op {
        PlanOp::Init { .. } => PlanOp::Init { target },
        PlanOp::InitAnti { short, .. } => PlanOp::InitAnti { target, short },
        PlanOp::Apply { list, kind, .. } => PlanOp::Apply { target, list, kind },
    }
}

/// Is `b` reachable from `a` through `pairs`, optionally ignoring the
/// pair at index `skip`? Bitmask BFS over at most 16 nodes.
fn reachable(pairs: &[(usize, usize)], a: usize, b: usize, skip: Option<usize>) -> bool {
    let mut succ = [0u16; 16];
    for (i, &(x, y)) in pairs.iter().enumerate() {
        if Some(i) != skip && x < 16 && y < 16 {
            succ[x] |= 1 << y;
        }
    }
    let mut frontier: u16 = succ[a];
    let mut seen: u16 = 0;
    while frontier & !seen != 0 {
        let v = (frontier & !seen).trailing_zeros() as usize;
        seen |= 1 << v;
        frontier |= succ[v];
    }
    seen & (1 << b) != 0
}

/// Drops the first restriction not implied by the others. Because the
/// compiler's restrictions give multiplicity exactly 1, removing a
/// non-redundant pair strictly grows the set of admitted rank-orders, so
/// some automorphism orbit gains a second representative.
fn drop_restriction(parts: &mut Parts) -> Option<()> {
    let idx = (0..parts.restrictions.len()).find(|&i| {
        let (a, b) = parts.restrictions[i];
        !reachable(&parts.restrictions, a, b, Some(i))
    })?;
    let (a, b) = parts.restrictions.remove(idx);
    // Keep the bound schedules consistent so only the symmetry check fires.
    if let Some(s) = parts.schedules.iter_mut().find(|s| s.target == b) {
        if let Some(p) = s.lower_bounds.iter().position(|&x| x == a) {
            s.lower_bounds.remove(p);
        }
    }
    Some(())
}

/// Swaps an op that streams its own level's list with an op at an earlier
/// level; the moved op now streams a list that is not matched yet.
fn swap_ops_across_levels(parts: &mut Parts) -> Option<()> {
    for l2 in 1..parts.actions.len() {
        let streams_own_list =
            |op: &PlanOp| matches!(op, PlanOp::Apply { list, .. } if *list == l2);
        let Some(i2) = parts.actions[l2].iter().position(streams_own_list) else {
            continue;
        };
        let Some(l1) = (0..l2).find(|&l| !parts.actions[l].is_empty()) else {
            continue;
        };
        let moved_down = parts.actions[l2][i2];
        let moved_up = parts.actions[l1][0];
        parts.actions[l2][i2] = moved_up;
        parts.actions[l1][0] = moved_down;
        return Some(());
    }
    None
}

/// Retargets an `Apply` at a buffer whose base op executes later in the
/// same level's action list.
fn retarget_op(parts: &mut Parts) -> Option<()> {
    for ops in &mut parts.actions {
        for ia in 0..ops.len() {
            if !matches!(ops[ia], PlanOp::Apply { .. }) {
                continue;
            }
            for ib in ia + 1..ops.len() {
                if matches!(ops[ib], PlanOp::Init { .. } | PlanOp::InitAnti { .. }) {
                    let late_target = ops[ib].target();
                    ops[ia] = with_target(ops[ia], late_target);
                    return Some(());
                }
            }
        }
    }
    None
}

/// Points a schedule's lower bound at the target level itself — a bound
/// source no restriction pair calls for.
fn corrupt_bound_source(parts: &mut Parts) -> Option<()> {
    if let Some(s) = parts
        .schedules
        .iter_mut()
        .find(|s| !s.lower_bounds.is_empty())
    {
        s.lower_bounds[0] = s.target;
        return Some(());
    }
    let s = parts.schedules.first_mut()?;
    s.lower_bounds.push(s.target);
    Some(())
}

fn base_position(actions: &[Vec<PlanOp>]) -> Option<(usize, usize)> {
    for (l, ops) in actions.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, PlanOp::Init { .. } | PlanOp::InitAnti { .. }) {
                return Some((l, i));
            }
        }
    }
    None
}

fn drop_init(parts: &mut Parts) -> Option<()> {
    let (l, i) = base_position(&parts.actions)?;
    parts.actions[l].remove(i);
    Some(())
}

fn duplicate_init(parts: &mut Parts) -> Option<()> {
    let (l, i) = base_position(&parts.actions)?;
    let op = parts.actions[l][i];
    parts.actions[l].push(op);
    Some(())
}

fn drop_apply(parts: &mut Parts, kind: SetOpKind) -> Option<()> {
    for ops in &mut parts.actions {
        if let Some(i) = ops
            .iter()
            .position(|op| matches!(op, PlanOp::Apply { kind: k, .. } if *k == kind))
        {
            ops.remove(i);
            return Some(());
        }
    }
    None
}

fn flip_op_kind(parts: &mut Parts) -> Option<()> {
    for ops in &mut parts.actions {
        for op in ops.iter_mut() {
            if let PlanOp::Apply { kind, .. } = op {
                if *kind == SetOpKind::Intersect {
                    *kind = SetOpKind::Subtract;
                    return Some(());
                }
            }
        }
    }
    None
}

fn unsort_actions(parts: &mut Parts) -> Option<()> {
    let ops = parts
        .actions
        .iter_mut()
        .find(|ops| ops.windows(2).any(|w| w[0].target() != w[1].target()))?;
    ops.reverse();
    Some(())
}

fn reverse_restriction(parts: &mut Parts) -> Option<()> {
    let (a, b) = *parts.restrictions.first()?;
    parts.restrictions[0] = (b, a);
    Some(())
}

fn duplicate_restriction(parts: &mut Parts) -> Option<()> {
    let pair = *parts.restrictions.first()?;
    parts.restrictions.push(pair);
    Some(())
}

/// Adds a restriction pair outside the transitive closure of the existing
/// ones; every automorphism stays broken, but the admitted rank-order
/// count drops below `k!/|Aut|`.
fn add_restriction(parts: &mut Parts) -> Option<()> {
    let k = parts.pattern.size();
    for a in 0..k {
        for b in a + 1..k {
            if !reachable(&parts.restrictions, a, b, None) {
                parts.restrictions.push((a, b));
                if let Some(s) = parts.schedules.iter_mut().find(|s| s.target == b) {
                    s.lower_bounds.push(a);
                }
                return Some(());
            }
        }
    }
    None
}

fn corrupt_schedule_target(parts: &mut Parts) -> Option<()> {
    let s = parts.schedules.first_mut()?;
    s.target = 0;
    Some(())
}

fn corrupt_first_connected(parts: &mut Parts) -> Option<()> {
    let s = parts.schedules.iter_mut().find(|s| s.target >= 2)?;
    s.first_connected = (s.first_connected + 1) % s.target;
    Some(())
}

fn retarget_past(parts: &mut Parts) -> Option<()> {
    let (l, ops) = parts
        .actions
        .iter_mut()
        .enumerate()
        .find(|(_, ops)| !ops.is_empty())?;
    ops[0] = with_target(ops[0], l);
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use fingers_pattern::ExecutionPlan;

    /// Every mutation of a diamond plan with the order forced to put the
    /// postponed anti-subtraction at level 1 (the richest small plan: an
    /// InitAnti coexisting with an Apply, intersections, restrictions,
    /// bounds) is caught with its expected kind.
    #[test]
    fn diamond_mutations_all_caught() {
        let diamond = Pattern::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let plan = ExecutionPlan::compile_with_order(&diamond, Induced::Vertex, &[0, 1, 2, 3]);
        let mutations = targeted_mutations(&plan);
        assert!(mutations.len() >= 12, "only {} applicable", mutations.len());
        for (m, mutated) in mutations {
            let report = verify(&mutated);
            assert!(
                report.has(m.expected_kind(Induced::Vertex)),
                "{m} expected {:?}:\n{report}",
                m.expected_kind(Induced::Vertex)
            );
        }
    }

    #[test]
    fn name_round_trips() {
        for m in PlanMutation::ALL {
            assert_eq!(PlanMutation::from_name(m.name()), Some(m));
        }
        assert_eq!(PlanMutation::from_name("nope"), None);
    }
}
