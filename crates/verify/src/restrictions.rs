//! Restriction soundness against the enumerated automorphism group.
//!
//! A plan's restrictions `R = {(a, b)} = {u_a < u_b}` are sound iff every
//! embedding of the pattern is counted **exactly once**:
//!
//! * **Under-restriction** (some embedding counted twice) happens iff some
//!   non-identity automorphism `σ` *survives* `R` — two distinct
//!   automorphic images of one embedding both satisfy every restriction.
//!   `σ` survives iff the digraph `R ∪ σR` (where `σR = {(σa, σb)}`) is
//!   acyclic: a topological order of that digraph yields an injective
//!   vertex-ID assignment `f` such that both `f` and `f∘σ` satisfy `R`,
//!   and conversely a surviving pair of assignments linearizes `R ∪ σR`.
//! * **Over-restriction** (some embedding never counted) is checked only
//!   once every `σ` is broken: the number of linear extensions of `R`
//!   counts how many of the `k!` rank-orders of an embedding's vertex IDs
//!   satisfy `R`; the automorphism orbits partition those `k!` orders into
//!   classes of size `|Aut|`, so multiplicity exactly 1 ⇔
//!   `#LE(R) = k!/|Aut|`, and any deficit means a lost embedding.
//!
//! Both checks are exhaustive and exact: `k ≤ 10`, so `k! ≤ 3.6M`
//! automorphisms (each checked in `O(k + |R|)`) and `2^k ≤ 1024` states in
//! the linear-extension DP.

use fingers_pattern::{automorphisms, ExecutionPlan};

use crate::diagnostics::{DiagnosticKind, PlanDiagnostic};

pub(crate) fn check(plan: &ExecutionPlan, out: &mut Vec<PlanDiagnostic>) {
    let k = plan.pattern_size();
    let restrictions = plan.restrictions();

    let mut well_formed = true;
    for &(a, b) in restrictions {
        if a >= b || b >= k {
            well_formed = false;
            out.push(PlanDiagnostic::new(
                DiagnosticKind::MalformedRestriction,
                format!(
                    "restriction u{a} < u{b} is not of the form a < b < k \
                     (the executor reads mapped[a] while matching level b)"
                ),
            ));
        }
    }
    let mut pairs: Vec<(usize, usize)> = restrictions.to_vec();
    pairs.sort_unstable();
    for w in pairs.windows(2) {
        if w[0] == w[1] {
            out.push(PlanDiagnostic::new(
                DiagnosticKind::DuplicateRestriction,
                format!(
                    "restriction u{} < u{} appears more than once (harmless \
                     for counts, but wastes a comparison per candidate)",
                    w[0].0, w[0].1
                ),
            ));
        }
    }
    if !well_formed {
        return; // group-theoretic checks need a valid partial order
    }
    pairs.dedup();

    let auts = automorphisms(plan.pattern());
    let mut any_unbroken = false;
    for sigma in &auts {
        if sigma.iter().enumerate().all(|(i, &v)| i == v) {
            continue; // identity
        }
        if survives(&pairs, sigma, k) {
            any_unbroken = true;
            out.push(PlanDiagnostic::new(
                DiagnosticKind::UnbrokenAutomorphism,
                format!(
                    "automorphism {sigma:?} survives the restrictions: its \
                     two images of some embedding are both counted"
                ),
            ));
        }
    }

    // The linear-extension census is only meaningful once every orbit has
    // at most one surviving representative.
    if !any_unbroken {
        let le = linear_extensions(&pairs, k);
        let expected = factorial(k) / auts.len() as u64;
        if le != expected {
            out.push(PlanDiagnostic::new(
                DiagnosticKind::OverRestriction,
                format!(
                    "restrictions admit {le} of {k}! vertex-rank orders, but \
                     counting every embedding exactly once requires \
                     {k}!/|Aut| = {expected}"
                ),
            ));
        }
    }
}

/// Does the non-identity automorphism `sigma` survive the restriction set?
/// Survives ⇔ `R ∪ σR` is acyclic (see module docs). Cycle detection by
/// Kahn's algorithm over ≤ `k ≤ 10` nodes.
fn survives(pairs: &[(usize, usize)], sigma: &[usize], k: usize) -> bool {
    // succ[v] = bitmask of successors under R ∪ σR.
    let mut succ = [0u16; 16];
    let mut indegree = [0u8; 16];
    let add = |succ: &mut [u16; 16], indegree: &mut [u8; 16], a: usize, b: usize| {
        if succ[a] & (1 << b) == 0 {
            succ[a] |= 1 << b;
            indegree[b] += 1;
        }
    };
    for &(a, b) in pairs {
        add(&mut succ, &mut indegree, a, b);
        add(&mut succ, &mut indegree, sigma[a], sigma[b]);
    }
    // Kahn: if every node is removable, the digraph is acyclic.
    let mut removed = 0usize;
    let mut queue: Vec<usize> = (0..k).filter(|&v| indegree[v] == 0).collect();
    while let Some(v) = queue.pop() {
        removed += 1;
        let mut m = succ[v];
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    removed == k
}

/// Number of linear extensions of the strict partial order generated by
/// `pairs` over `0..k`, by the standard subset DP:
/// `dp[mask]` = orders of the levels in `mask` consistent with the pairs,
/// extending by any `w ∈ mask` whose predecessors all lie in `mask ∖ {w}`.
fn linear_extensions(pairs: &[(usize, usize)], k: usize) -> u64 {
    let mut preds = [0u16; 16];
    for &(a, b) in pairs {
        preds[b] |= 1 << a;
    }
    let full: usize = (1 << k) - 1;
    let mut dp = vec![0u64; full + 1];
    dp[0] = 1;
    for mask in 1..=full {
        let mut m = mask as u16;
        let mut total = 0u64;
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            let rest = mask & !(1 << w);
            // w can come last among `mask` iff all its predecessors are
            // already placed (subset of `rest`).
            if preds[w] as usize & !rest == 0 {
                total += dp[rest];
            }
        }
        dp[mask] = total;
    }
    dp[full]
}

fn factorial(k: usize) -> u64 {
    (1..=k as u64).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_extension_counts() {
        // No constraints: k! orders.
        assert_eq!(linear_extensions(&[], 3), 6);
        // Total order: exactly one.
        assert_eq!(linear_extensions(&[(0, 1), (1, 2), (0, 2)], 3), 1);
        // One pair over 3 elements: half of 3!.
        assert_eq!(linear_extensions(&[(0, 1)], 3), 3);
    }

    #[test]
    fn transposition_survival() {
        // σ = (0 1). R = {(0,1)} breaks it: σR = {(1,0)} closes a cycle.
        assert!(!survives(&[(0, 1)], &[1, 0, 2], 3));
        // R = {(1,2)} does not mention the swapped pair: σ survives.
        assert!(survives(&[(1, 2)], &[1, 0, 2], 3));
    }

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(10), 3_628_800);
    }
}
