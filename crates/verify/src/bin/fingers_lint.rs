//! `fingers-lint`: the workspace hot-path lint, wired into scripts/ci.sh.
//!
//! Usage: `fingers-lint [workspace-root]` (default `.`). Exits 0 when the
//! scan is clean, 1 on any violation, 2 when the root cannot be read.

use std::path::Path;
use std::process::ExitCode;

use fingers_verify::lint;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let summary = match lint::lint_workspace(Path::new(&root)) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("fingers-lint: cannot scan {root}: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &summary.violations {
        eprintln!("{v}");
    }
    eprintln!(
        "fingers-lint: {} file(s) scanned, {} violation(s)",
        summary.files_scanned,
        summary.violations.len()
    );
    if summary.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
