//! Dataflow soundness: structural op checks plus per-target contribution
//! accounting against Equation (1).
//!
//! The compiler always emits one exact shape (base at the first connected
//! ancestor, postponed anti-subtraction, intra-level actions sorted by
//! target). The verifier accepts the slightly wider class of plans that
//! are *semantically* equivalent — any connected ancestor may host the
//! base as long as the remaining connected lists are intersected and every
//! disconnected ancestor is subtracted (vertex-induced) — while rejecting
//! every plan whose execution reads unmaterialized state or computes a
//! candidate set Equation (1) does not define.

use fingers_pattern::{ExecutionPlan, Induced, PlanOp};
use fingers_setops::SetOpKind;

use crate::diagnostics::{DiagnosticKind, PlanDiagnostic};

pub(crate) fn check(plan: &ExecutionPlan, out: &mut Vec<PlanDiagnostic>) {
    let k = plan.pattern_size();
    check_ops(plan, k, out);
    check_schedule_shape(plan, k, out);
    for j in 1..k {
        check_target(plan, j, out);
    }
}

/// Per-op structural checks: targets in range, streamed lists already
/// matched, intra-level execution order sorted by target.
fn check_ops(plan: &ExecutionPlan, k: usize, out: &mut Vec<PlanDiagnostic>) {
    for level in 0..k {
        let ops = plan.actions_at(level);
        for op in ops {
            let j = op.target();
            if j <= level || j >= k {
                out.push(
                    PlanDiagnostic::new(
                        DiagnosticKind::OpTargetOutOfRange,
                        format!("op targets S{j}, which is not a later level (k = {k})"),
                    )
                    .at_level(level)
                    .for_target(j),
                );
                continue;
            }
            let ahead = match *op {
                PlanOp::Apply { list, .. } => (list > level).then_some(list),
                PlanOp::InitAnti { short, .. } => (short >= level).then_some(short),
                PlanOp::Init { .. } => None,
            };
            if let Some(list) = ahead {
                out.push(
                    PlanDiagnostic::new(
                        DiagnosticKind::StreamedListAhead,
                        format!("op streams N(u{list}), but level {list} is not matched yet"),
                    )
                    .at_level(level)
                    .for_target(j),
                );
            }
        }
        if ops.windows(2).any(|w| w[0].target() > w[1].target()) {
            out.push(
                PlanDiagnostic::new(
                    DiagnosticKind::UnsortedActions,
                    "actions are not sorted by target; terminal count fusion \
                     splits off the deepest target and relies on that order",
                )
                .at_level(level),
            );
        }
    }
}

/// `schedules[j-1]` must describe target `j` for every `1 <= j < k`.
fn check_schedule_shape(plan: &ExecutionPlan, k: usize, out: &mut Vec<PlanDiagnostic>) {
    let schedules = plan.schedules();
    if schedules.len() != k.saturating_sub(1) {
        out.push(PlanDiagnostic::new(
            DiagnosticKind::ScheduleMismatch,
            format!(
                "{} schedules for {} levels (expected one per level 1..{k})",
                schedules.len(),
                k
            ),
        ));
    }
    for (i, s) in schedules.iter().enumerate() {
        if s.target != i + 1 {
            out.push(
                PlanDiagnostic::new(
                    DiagnosticKind::ScheduleMismatch,
                    format!(
                        "schedule at index {i} claims target {}, expected {}",
                        s.target,
                        i + 1
                    ),
                )
                .for_target(i + 1),
            );
        }
    }
}

/// Contribution accounting for one target `j`: exactly one base op at a
/// connected ancestor, every other connected ancestor intersected, every
/// disconnected ancestor subtracted iff vertex-induced, nothing spurious,
/// nothing read before materialization — plus the schedule metadata checks
/// (first-connected ancestor, lower bounds vs. restrictions).
fn check_target(plan: &ExecutionPlan, j: usize, out: &mut Vec<PlanDiagnostic>) {
    let k = plan.pattern_size();
    let pattern = plan.pattern();
    let connected: Vec<usize> = (0..j).filter(|&i| pattern.are_adjacent(i, j)).collect();
    if connected.is_empty() {
        out.push(
            PlanDiagnostic::new(
                DiagnosticKind::DisconnectedSchedule,
                format!("level {j} has no earlier neighbor; S{j} cannot be seeded"),
            )
            .for_target(j),
        );
        return;
    }
    let first_connected = connected[0];
    let induced = plan.induced();

    // Walk every op for target j in execution order (level asc, then
    // intra-level index asc — the interpreter's order).
    let mut base: Option<usize> = None; // level hosting the base op
    let mut intersected: Vec<usize> = Vec::new(); // Intersect list levels
    let mut subtracted: Vec<usize> = Vec::new(); // Subtract lists + InitAnti shorts
    for level in 0..k {
        for op in plan.actions_at(level) {
            if op.target() != j || j <= level || j >= k {
                continue; // out-of-range targets already reported
            }
            match *op {
                PlanOp::Init { .. } | PlanOp::InitAnti { .. } => {
                    if base.is_some() {
                        out.push(
                            PlanDiagnostic::new(
                                DiagnosticKind::DuplicateMaterialization,
                                format!(
                                    "S{j} is materialized again at level {level}; \
                                     the earlier contributions are discarded"
                                ),
                            )
                            .at_level(level)
                            .for_target(j),
                        );
                    } else {
                        base = Some(level);
                        if !pattern.are_adjacent(level, j) {
                            out.push(
                                PlanDiagnostic::new(
                                    DiagnosticKind::WrongMaterializationLevel,
                                    format!(
                                        "S{j} is seeded from N(u{level}), but levels \
                                         {level} and {j} are not adjacent in the pattern"
                                    ),
                                )
                                .at_level(level)
                                .for_target(j),
                            );
                        }
                    }
                    if let PlanOp::InitAnti { short, .. } = *op {
                        if induced == Induced::Edge {
                            out.push(edge_subtraction(level, j, short, "anti-subtracts"));
                        } else if short < level {
                            subtracted.push(short);
                        }
                        // short >= level already reported as StreamedListAhead.
                    }
                }
                PlanOp::Apply { list, kind, .. } => {
                    if base.is_none() {
                        out.push(
                            PlanDiagnostic::new(
                                DiagnosticKind::UseBeforeInit,
                                format!(
                                    "op updates S{j} at level {level}, before any \
                                     Init/InitAnti has materialized it"
                                ),
                            )
                            .at_level(level)
                            .for_target(j),
                        );
                    }
                    if list > level {
                        continue; // already reported as StreamedListAhead
                    }
                    match kind {
                        SetOpKind::Intersect => intersected.push(list),
                        SetOpKind::Subtract => {
                            if induced == Induced::Edge {
                                out.push(edge_subtraction(level, j, list, "subtracts"));
                            } else {
                                subtracted.push(list);
                            }
                        }
                        SetOpKind::AntiSubtract => out.push(
                            PlanDiagnostic::new(
                                DiagnosticKind::SpuriousOp,
                                format!(
                                    "S{j} receives a bare anti-subtraction Apply; \
                                     anti-subtraction only exists fused into InitAnti"
                                ),
                            )
                            .at_level(level)
                            .for_target(j),
                        ),
                    }
                }
            }
        }
    }

    accounting(plan, j, &connected, base, &intersected, &subtracted, out);
    check_schedule_of(plan, j, first_connected, out);
}

/// Compares the gathered contributions with the set Equation (1) defines.
fn accounting(
    plan: &ExecutionPlan,
    j: usize,
    connected: &[usize],
    base: Option<usize>,
    intersected: &[usize],
    subtracted: &[usize],
    out: &mut Vec<PlanDiagnostic>,
) {
    let pattern = plan.pattern();
    let base = match base {
        Some(b) => b,
        None => {
            out.push(
                PlanDiagnostic::new(
                    DiagnosticKind::MissingMaterialization,
                    format!("no Init/InitAnti ever materializes S{j}"),
                )
                .for_target(j),
            );
            return;
        }
    };

    // Required intersections: every connected ancestor except the base
    // (whose list arrives via the materialization itself).
    for &i in connected {
        if i == base {
            continue;
        }
        let n = intersected.iter().filter(|&&l| l == i).count();
        if n == 0 {
            out.push(
                PlanDiagnostic::new(
                    DiagnosticKind::MissingIntersection,
                    format!("connected ancestor {i} is never intersected into S{j}"),
                )
                .for_target(j),
            );
        }
    }
    // Spurious intersections: non-neighbors, the base itself, duplicates.
    let mut seen_intersect: Vec<usize> = Vec::new();
    for &l in intersected {
        let required = l != base && connected.contains(&l);
        if !required || seen_intersect.contains(&l) {
            out.push(
                PlanDiagnostic::new(
                    DiagnosticKind::SpuriousOp,
                    format!(
                        "S{j} is intersected with N(u{l}), which Equation (1) \
                         does not call for ({})",
                        if seen_intersect.contains(&l) {
                            "duplicate list"
                        } else if l == base {
                            "already the base list"
                        } else {
                            "not an earlier neighbor"
                        }
                    ),
                )
                .for_target(j),
            );
        }
        seen_intersect.push(l);
    }

    // Subtractions (vertex-induced): exactly the disconnected ancestors.
    let disconnected: Vec<usize> = (0..j).filter(|&i| !pattern.are_adjacent(i, j)).collect();
    if plan.induced() == Induced::Vertex {
        for &i in &disconnected {
            let n = subtracted.iter().filter(|&&l| l == i).count();
            if n == 0 {
                out.push(
                    PlanDiagnostic::new(
                        DiagnosticKind::MissingSubtraction,
                        format!("disconnected ancestor {i} is never subtracted from S{j}"),
                    )
                    .for_target(j),
                );
            }
        }
    }
    let mut seen_subtract: Vec<usize> = Vec::new();
    for &l in subtracted {
        if !disconnected.contains(&l) || seen_subtract.contains(&l) {
            out.push(
                PlanDiagnostic::new(
                    DiagnosticKind::SpuriousOp,
                    format!(
                        "S{j} subtracts N(u{l}), which Equation (1) does not \
                         call for ({})",
                        if seen_subtract.contains(&l) {
                            "duplicate list"
                        } else {
                            "an earlier neighbor must be intersected, not subtracted"
                        }
                    ),
                )
                .for_target(j),
            );
        }
        seen_subtract.push(l);
    }
}

/// Schedule metadata for target `j`: `first_connected` and `lower_bounds`
/// must agree with the pattern and the restriction pairs.
fn check_schedule_of(
    plan: &ExecutionPlan,
    j: usize,
    first_connected: usize,
    out: &mut Vec<PlanDiagnostic>,
) {
    let Some(s) = plan.schedules().get(j - 1) else {
        return; // shape mismatch already reported
    };
    if s.target != j {
        return; // shape mismatch already reported
    }
    if s.first_connected != first_connected {
        out.push(
            PlanDiagnostic::new(
                DiagnosticKind::FirstConnectedMismatch,
                format!(
                    "schedule says S{j} comes alive at level {}, but the first \
                     connected ancestor is {first_connected}",
                    s.first_connected
                ),
            )
            .for_target(j),
        );
    }
    // Lower bounds as a *set* must equal {a | (a, j) in restrictions}.
    // (Duplicate restriction pairs are a separate warning; the executor
    // reduces Max-of-bounds, so duplicates cannot change candidates.)
    let mut expected: Vec<usize> = plan
        .restrictions()
        .iter()
        .filter(|&&(a, b)| b == j && a < b)
        .map(|&(a, _)| a)
        .collect();
    expected.sort_unstable();
    expected.dedup();
    let mut actual: Vec<usize> = s.lower_bounds.clone();
    actual.sort_unstable();
    actual.dedup();
    if actual != expected {
        out.push(
            PlanDiagnostic::new(
                DiagnosticKind::BoundScheduleMismatch,
                format!(
                    "schedule lower bounds {actual:?} disagree with the \
                     restriction pairs, which require {expected:?}"
                ),
            )
            .for_target(j),
        );
    }
}

fn edge_subtraction(level: usize, j: usize, list: usize, what: &str) -> PlanDiagnostic {
    PlanDiagnostic::new(
        DiagnosticKind::SubtractionInEdgeInduced,
        format!("edge-induced plan {what} N(u{list}) from S{j}; edge-induced semantics never exclude candidates"),
    )
    .at_level(level)
    .for_target(j)
}
