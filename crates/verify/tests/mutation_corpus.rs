//! The verifier's acceptance corpus.
//!
//! Two directions, both required for the verifier to be trustworthy:
//!
//! * **Soundness of the compiler** — every plan the compiler emits, across
//!   the paper's benchmark suite, an extended pattern library, and 100
//!   random connected patterns, must verify clean. A verifier that flags
//!   correct plans is useless as a gate.
//! * **Sensitivity to corruption** — every targeted mutation of a sound
//!   plan must be caught, and caught with the *expected* diagnostic kind,
//!   not just "something is wrong". In particular the four canonical
//!   corruptions (dropped restriction, ops swapped across levels, op
//!   retargeted, corrupted bound source) must each produce a distinct
//!   diagnostic so a failure report localizes the bug.

use fingers_pattern::benchmarks::Benchmark;
use fingers_pattern::{ExecutionPlan, Induced, Pattern};
use fingers_verify::{mutate, verify, DiagnosticKind, PlanMutation, Severity};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The extended pattern library: everything the pattern crate can build
/// (all sizes the plan compiler supports, assorted symmetry groups).
fn library() -> Vec<Pattern> {
    vec![
        Pattern::triangle(),
        Pattern::clique(4),
        Pattern::clique(5),
        Pattern::clique(6),
        Pattern::tailed_triangle(),
        Pattern::four_cycle(),
        Pattern::diamond(),
        Pattern::wedge(),
        Pattern::path(5),
        Pattern::star(4),
        Pattern::house(),
        Pattern::bull(),
        Pattern::gem(),
        Pattern::butterfly(),
    ]
}

/// A random connected pattern: a uniform spanning tree (each vertex v > 0
/// attaches to a random earlier vertex) plus a few random extra edges.
fn random_connected_pattern(seed: u64) -> Pattern {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = rng.gen_range(3..=7usize);
    let mut edges = Vec::new();
    for v in 1..k {
        let parent = rng.gen_range(0..v);
        edges.push((parent, v));
    }
    let extra = rng.gen_range(0..=k);
    for _ in 0..extra {
        let a = rng.gen_range(0..k);
        let b = rng.gen_range(0..k);
        if a != b && !edges.contains(&(a.min(b), a.max(b))) {
            edges.push((a.min(b), a.max(b)));
        }
    }
    Pattern::from_edges(k, &edges)
}

fn assert_sound(plan: &ExecutionPlan, context: &str) {
    let report = verify(plan);
    assert!(
        report.diagnostics().is_empty(),
        "{context}: expected a clean report, got:\n{report}"
    );
}

fn assert_mutations_caught(plan: &ExecutionPlan, context: &str) {
    let mutants = mutate::targeted_mutations(plan);
    for (mutation, mutant) in &mutants {
        let expected = mutation.expected_kind(plan.induced());
        let report = verify(mutant);
        assert!(
            report.has(expected),
            "{context}: mutation {mutation} should raise {expected}, got:\n{report}"
        );
        if expected.severity() >= Severity::Error {
            assert!(
                !report.is_sound(),
                "{context}: mutation {mutation} raised only warnings"
            );
        }
    }
}

#[test]
fn benchmark_plans_verify_clean() {
    for bench in Benchmark::ALL {
        for plan in bench.plan().plans() {
            assert_sound(plan, &format!("benchmark {bench}"));
        }
    }
}

#[test]
fn library_plans_verify_clean_in_both_modes() {
    for pattern in library() {
        for induced in [Induced::Vertex, Induced::Edge] {
            let plan = ExecutionPlan::compile(&pattern, induced);
            assert_sound(&plan, &format!("{pattern} ({induced:?})"));
        }
    }
}

#[test]
fn optimized_orders_verify_clean() {
    for pattern in library() {
        let plan = ExecutionPlan::compile_optimized(&pattern, Induced::Vertex, 100_000.0, 5e-4);
        assert_sound(&plan, &format!("{pattern} (optimized order)"));
    }
}

#[test]
fn hundred_random_patterns_verify_clean() {
    for seed in 0..100u64 {
        let pattern = random_connected_pattern(seed);
        for induced in [Induced::Vertex, Induced::Edge] {
            let plan = ExecutionPlan::compile(&pattern, induced);
            assert_sound(&plan, &format!("random seed {seed} ({induced:?})"));
        }
    }
}

#[test]
fn benchmark_mutations_all_caught() {
    for bench in Benchmark::ALL {
        for plan in bench.plan().plans() {
            assert_mutations_caught(plan, &format!("benchmark {bench}"));
        }
    }
}

#[test]
fn library_mutations_all_caught() {
    for pattern in library() {
        for induced in [Induced::Vertex, Induced::Edge] {
            let plan = ExecutionPlan::compile(&pattern, induced);
            assert_mutations_caught(&plan, &format!("{pattern} ({induced:?})"));
        }
    }
}

#[test]
fn random_pattern_mutations_all_caught() {
    // A cheaper sweep than the clean-verification one: mutation corpora
    // multiply the verifier runs by up to 16.
    for seed in 0..25u64 {
        let pattern = random_connected_pattern(seed);
        let plan = ExecutionPlan::compile(&pattern, Induced::Vertex);
        assert_mutations_caught(&plan, &format!("random seed {seed}"));
    }
}

/// The four canonical corruptions from the issue, each with the diagnostic
/// kind that must identify it. The diamond with the forced identity order
/// hosts all four mutation sites (its level 1 holds both an `Apply` and a
/// later base op, so the retarget mutation applies).
#[test]
fn canonical_mutations_have_distinct_kinds() {
    let pattern = Pattern::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    let plan = ExecutionPlan::compile_with_order(&pattern, Induced::Vertex, &[0, 1, 2, 3]);
    assert_sound(&plan, "forced-order diamond");

    let canonical = [
        PlanMutation::DropRestriction,
        PlanMutation::SwapOpsAcrossLevels,
        PlanMutation::RetargetOp,
        PlanMutation::CorruptBoundSource,
    ];
    let mut kinds = Vec::new();
    for mutation in canonical {
        let mutant = mutation
            .apply(&plan)
            .unwrap_or_else(|| panic!("{mutation} must apply to the forced-order diamond"));
        let expected = mutation.expected_kind(plan.induced());
        let report = verify(&mutant);
        assert!(
            report.has(expected),
            "{mutation} should raise {expected}, got:\n{report}"
        );
        assert!(!report.is_sound(), "{mutation} must make the plan unsound");
        kinds.push(expected);
    }
    // Distinctness is the point: a report must localize which corruption
    // happened, not collapse all four into one generic failure.
    for i in 0..kinds.len() {
        for j in i + 1..kinds.len() {
            assert_ne!(kinds[i], kinds[j], "canonical kinds must be distinct");
        }
    }
    assert_eq!(
        kinds,
        vec![
            DiagnosticKind::UnbrokenAutomorphism,
            DiagnosticKind::StreamedListAhead,
            DiagnosticKind::UseBeforeInit,
            DiagnosticKind::BoundScheduleMismatch,
        ]
    );
}
