//! Std-compatible sync shim.
//!
//! Production builds (no `model-check` feature) re-export the `std::sync`
//! types verbatim — zero cost, zero behaviour change. With the feature, the
//! same names resolve to instrumented wrappers that report every operation to
//! [`crate::model`] when a model-check exploration is driving the current
//! thread, and behave exactly like std otherwise.
//!
//! Porting a module is a one-line import swap:
//!
//! ```ignore
//! use fingers_conc::sync::{Condvar, Mutex, PoisonError};
//! use fingers_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
//! ```
//!
//! Not everything should be ported. Statics requiring `const fn new` (signal
//! flags, chaos-injection counters) stay on `std::sync::atomic` — the
//! instrumented constructors allocate an object id at runtime, and signal
//! handlers must remain async-signal-safe (no locks, no thread-locals).

pub use std::sync::{LockResult, PoisonError};

#[cfg(not(feature = "model-check"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

/// Atomic types and memory orderings (std re-exports or instrumented).
pub mod atomic {
    #[cfg(not(feature = "model-check"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(feature = "model-check")]
    pub use super::instrumented::{AtomicBool, AtomicU64, AtomicUsize};
    #[cfg(feature = "model-check")]
    pub use std::sync::atomic::Ordering;
}

#[cfg(feature = "model-check")]
pub use instrumented::{Condvar, Mutex, MutexGuard};

#[cfg(feature = "model-check")]
mod instrumented {
    //! Instrumented primitives: each op is a schedule point when a model
    //! exploration is active on the current thread, a std passthrough when
    //! not. Object ids are per-execution and feed the state fingerprint.

    use crate::model;
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::Ordering;
    use std::sync::{LockResult, PoisonError};

    /// Instrumented `std::sync::Mutex`.
    pub struct Mutex<T: ?Sized> {
        id: usize,
        inner: std::sync::Mutex<T>,
    }

    /// Guard for [`Mutex`]; releases the model-level hold on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        owner: &'a Mutex<T>,
        /// `None` only transiently inside `Condvar::wait` (the guard is
        /// neutered before being forgotten).
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// See `std::sync::Mutex::new`.
        pub fn new(value: T) -> Self {
            Mutex {
                id: model::register_object(),
                inner: std::sync::Mutex::new(value),
            }
        }

        /// See `std::sync::Mutex::into_inner`.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// See `std::sync::Mutex::lock`. A schedule point under the model.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            model::mutex_lock(self.id);
            // The model-level hold (when active) guarantees this OS lock is
            // uncontended; outside the model it does the real synchronizing.
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    owner: self,
                    inner: Some(g),
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    owner: self,
                    inner: Some(poisoned.into_inner()),
                })),
            }
        }

        /// See `std::sync::Mutex::get_mut` (exclusive access — no schedule
        /// point, matching std's no-locking semantics).
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            match &self.inner {
                Some(g) => g,
                None => unreachable!("guard neutered only inside Condvar::wait"),
            }
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            match &mut self.inner {
                Some(g) => g,
                None => unreachable!("guard neutered only inside Condvar::wait"),
            }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the OS lock first, then the model-level hold; a
            // neutered guard (inner already None) releases nothing.
            if self.inner.take().is_some() {
                model::mutex_unlock(self.owner.id);
            }
        }
    }

    /// Instrumented `std::sync::Condvar`.
    pub struct Condvar {
        id: usize,
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// See `std::sync::Condvar::new`.
        pub fn new() -> Self {
            Condvar {
                id: model::register_object(),
                inner: std::sync::Condvar::new(),
            }
        }

        /// See `std::sync::Condvar::wait`. Under the model this atomically
        /// releases the mutex and parks, then re-acquires before returning.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let mut guard = guard;
            let owner = guard.owner;
            if model::in_model() {
                // Neuter the guard: drop the OS lock here, skip the model
                // unlock (condvar_wait performs it atomically with parking).
                drop(guard.inner.take());
                std::mem::forget(guard);
                model::condvar_wait(self.id, owner.id);
                // Model-level hold re-acquired; take the OS lock (uncontended).
                match owner.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        owner,
                        inner: Some(g),
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        owner,
                        inner: Some(poisoned.into_inner()),
                    })),
                }
            } else {
                let std_guard = match guard.inner.take() {
                    Some(g) => g,
                    None => unreachable!("guard neutered only inside Condvar::wait"),
                };
                std::mem::forget(guard);
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        owner,
                        inner: Some(g),
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        owner,
                        inner: Some(poisoned.into_inner()),
                    })),
                }
            }
        }

        /// See `std::sync::Condvar::notify_one`. Under the model, wakes the
        /// lowest-index waiter (deterministic; std promises no fairness).
        pub fn notify_one(&self) {
            model::condvar_notify(self.id, false);
            self.inner.notify_one();
        }

        /// See `std::sync::Condvar::notify_all`.
        pub fn notify_all(&self) {
            model::condvar_notify(self.id, true);
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    macro_rules! instrumented_atomic {
        ($Name:ident, $Std:ty, $Prim:ty, $to_u64:expr) => {
            /// Instrumented atomic; every op is a schedule point under the
            /// model, and the post-op value feeds the state fingerprint.
            pub struct $Name {
                id: usize,
                inner: $Std,
            }

            impl $Name {
                /// See the std atomic's `new`.
                pub fn new(value: $Prim) -> Self {
                    $Name {
                        id: model::register_object(),
                        inner: <$Std>::new(value),
                    }
                }

                fn record(&self) {
                    let cast: fn($Prim) -> u64 = $to_u64;
                    // ord: seqcst(mirror read feeding the model state fingerprint; strength is irrelevant, the explorer serializes)
                    model::atomic_value(self.id, cast(self.inner.load(Ordering::SeqCst)));
                }

                /// See the std atomic's `load`.
                pub fn load(&self, order: Ordering) -> $Prim {
                    model::atomic_point(concat!(stringify!($Name), "-load"));
                    self.inner.load(order)
                }

                /// See the std atomic's `store`.
                pub fn store(&self, value: $Prim, order: Ordering) {
                    model::atomic_point(concat!(stringify!($Name), "-store"));
                    self.inner.store(value, order);
                    self.record();
                }

                /// See the std atomic's `swap`.
                pub fn swap(&self, value: $Prim, order: Ordering) -> $Prim {
                    model::atomic_point(concat!(stringify!($Name), "-swap"));
                    let prev = self.inner.swap(value, order);
                    self.record();
                    prev
                }

                /// See the std atomic's `into_inner`.
                pub fn into_inner(self) -> $Prim {
                    self.inner.into_inner()
                }
            }

            impl Default for $Name {
                fn default() -> Self {
                    $Name::new(<$Prim>::default())
                }
            }

            impl fmt::Debug for $Name {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool, |b| b
        as u64);
    instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64, |v| v);
    instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize, |v| v
        as u64);

    impl AtomicU64 {
        /// See `std::sync::atomic::AtomicU64::fetch_add`.
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            model::atomic_point("AtomicU64-fetch-add");
            let prev = self.inner.fetch_add(value, order);
            self.record();
            prev
        }

        /// See `std::sync::atomic::AtomicU64::fetch_sub`.
        pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
            model::atomic_point("AtomicU64-fetch-sub");
            let prev = self.inner.fetch_sub(value, order);
            self.record();
            prev
        }

        /// See `std::sync::atomic::AtomicU64::fetch_max`.
        pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
            model::atomic_point("AtomicU64-fetch-max");
            let prev = self.inner.fetch_max(value, order);
            self.record();
            prev
        }

        /// See `std::sync::atomic::AtomicU64::fetch_update`. One schedule
        /// point for the whole RMW (the std op is itself atomic).
        pub fn fetch_update<F>(
            &self,
            set_order: Ordering,
            fetch_order: Ordering,
            f: F,
        ) -> Result<u64, u64>
        where
            F: FnMut(u64) -> Option<u64>,
        {
            model::atomic_point("AtomicU64-fetch-update");
            let r = self.inner.fetch_update(set_order, fetch_order, f);
            self.record();
            r
        }
    }

    impl AtomicUsize {
        /// See `std::sync::atomic::AtomicUsize::fetch_add`.
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            model::atomic_point("AtomicUsize-fetch-add");
            let prev = self.inner.fetch_add(value, order);
            self.record();
            prev
        }
    }
}
