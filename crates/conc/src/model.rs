//! Deterministic bounded model checker (mini-loom).
//!
//! [`check`] runs a closure — the *harness body* — many times, once per
//! schedule. Threads spawned through [`Sim::spawn`] and every operation on the
//! instrumented [`crate::sync`] primitives become *schedule points*: the
//! checker serializes execution so exactly one model thread runs at a time,
//! and at each point it either replays a previously recorded choice or picks
//! the first runnable thread and records the alternatives. A depth-first
//! backtracking loop then drives the harness through every reachable
//! interleaving whose number of *preemptive* context switches (switching away
//! from a thread that could have kept running) stays within
//! [`CheckOptions::max_preemptions`]. Forced switches — the running thread
//! blocked or finished — are free, so every execution runs to completion.
//!
//! Invariants are ordinary `assert!`s inside the body. A failing assertion
//! (or a deadlock, detected when no thread is runnable but not all have
//! finished) is captured as a [`Violation`] carrying the exact schedule that
//! produced it, and the offending execution is unwound via a private panic
//! payload that the harness plumbing swallows.
//!
//! State hashing: at every schedule point the checker fingerprints the model
//! state (thread statuses, per-thread progress counters, mutex holders,
//! atomic values) and reports the number of distinct fingerprints in
//! [`CheckReport::distinct_states`]. The fingerprint is *statistics only* —
//! it never prunes the search, because the hash cannot see uninstrumented
//! memory, so pruning could hide genuine violations. Exhaustiveness claims
//! rest on the unpruned DFS.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for one [`check`] run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Maximum number of *preemptive* context switches per execution.
    /// Switches forced by blocking or finishing are not counted.
    pub max_preemptions: u32,
    /// Hard cap on the number of executions explored (safety valve against
    /// state-space blowups; hitting it marks the report incomplete).
    pub max_executions: u64,
    /// Wall-clock budget for the whole exploration (hitting it marks the
    /// report incomplete).
    pub max_duration: Duration,
    /// Stop exploring after this many violations have been recorded.
    pub max_violations: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_preemptions: 4,
            max_executions: 2_000_000,
            max_duration: Duration::from_secs(30),
            max_violations: 1,
        }
    }
}

/// One schedule decision: which thread ran, and which operation it was about
/// to perform when it was scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Model thread index (0 is the harness body itself).
    pub thread: usize,
    /// Static name of the instrumented operation at this point.
    pub op: &'static str,
}

/// A captured invariant failure together with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The panic/assertion message, or a deadlock description.
    pub message: String,
    /// The full schedule trace of the violating execution.
    pub schedule: Vec<ScheduleStep>,
}

/// Result of a [`check`] exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Harness name, echoed from [`check`].
    pub name: String,
    /// Number of complete (or aborted-on-violation) executions explored.
    pub executions: u64,
    /// Total schedule points visited across all executions.
    pub sched_points: u64,
    /// Number of distinct model-state fingerprints observed (stats only).
    pub distinct_states: u64,
    /// Largest number of model threads alive in any execution.
    pub max_threads: usize,
    /// The preemption bound the exploration ran under.
    pub preemption_bound: u32,
    /// True iff the bounded schedule space was exhausted (no cap was hit and
    /// exploration was not stopped early by `max_violations`).
    pub complete: bool,
    /// All violations recorded (at most `max_violations`).
    pub violations: Vec<Violation>,
    /// Wall-clock time spent exploring, in milliseconds.
    pub wall_ms: u128,
}

impl CheckReport {
    /// Panic unless the bounded space was exhausted with zero violations.
    ///
    /// This is the assertion every production harness makes.
    pub fn assert_clean(&self) {
        if let Some(v) = self.violations.first() {
            let trace: Vec<String> = v
                .schedule
                .iter()
                .map(|s| format!("t{}:{}", s.thread, s.op))
                .collect();
            panic!(
                "model check '{}' found a violation after {} executions: {}\nschedule: {}",
                self.name,
                self.executions,
                v.message,
                trace.join(" -> ")
            );
        }
        assert!(
            self.complete,
            "model check '{}' did not exhaust its bounded schedule space \
             ({} executions, {} sched points, {} ms)",
            self.name, self.executions, self.sched_points, self.wall_ms
        );
    }

    /// Panic unless at least one violation was recorded.
    ///
    /// Used by the seeded-bug fixtures that prove the checker has teeth.
    pub fn assert_caught(&self) {
        assert!(
            !self.violations.is_empty(),
            "model check '{}' was expected to catch a seeded bug but explored \
             {} executions without a violation (complete: {})",
            self.name,
            self.executions,
            self.complete
        );
    }
}

/// Handle for spawning model threads inside a harness body.
///
/// Cloneable and sendable, so model threads can themselves spawn replacements
/// (the phoenix-rebuild harness relies on this).
#[derive(Clone)]
pub struct Sim {
    exec: Arc<ExecShared>,
}

/// Join handle for a model thread; see [`Sim::spawn`].
pub struct JoinHandle<T> {
    idx: usize,
    result: Arc<StdMutex<Option<T>>>,
}

/// Private unwind payload used to tear down an execution early (violation
/// found, or deadlock declared). Swallowed by the harness plumbing; never
/// surfaces to user code.
struct AbortExec;

#[derive(Clone)]
struct Ctx {
    exec: Arc<ExecShared>,
    me: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread is running under a model-check exploration.
/// The instrumented sync primitives use this to fall back to plain std
/// behaviour outside [`check`], so the full test suite can run with the
/// `model-check` feature enabled.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

/// A recorded branch point: the choice taken plus the untried alternatives.
#[derive(Debug, Clone)]
struct Frame {
    chosen: usize,
    alts: Vec<usize>,
}

struct ExecState {
    statuses: Vec<Status>,
    /// Per-thread count of schedule points executed (part of the state hash).
    ops: Vec<u64>,
    current: usize,
    /// Replay prefix: the `chosen` of each stack frame, consumed in order at
    /// multi-candidate schedule points.
    prefix: Vec<usize>,
    pos: usize,
    /// Branch points discovered beyond the prefix during this execution.
    fresh: Vec<Frame>,
    preemptions: u32,
    bound: u32,
    /// Mutex object id -> holding thread.
    holders: BTreeMap<usize, usize>,
    /// Atomic object id -> last value (for the state fingerprint).
    atomics: BTreeMap<usize, u64>,
    next_obj_id: usize,
    steps: Vec<ScheduleStep>,
    sigs: Vec<u64>,
    sched_points: u64,
    failure: Option<String>,
    aborting: bool,
}

struct ExecShared {
    st: StdMutex<ExecState>,
    cv: StdCondvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

fn lock_state(exec: &ExecShared) -> StdMutexGuard<'_, ExecState> {
    exec.st.lock().unwrap_or_else(|e| e.into_inner())
}

fn fingerprint(st: &ExecState) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (i, s) in st.statuses.iter().enumerate() {
        i.hash(&mut h);
        match s {
            Status::Runnable => 0u8.hash(&mut h),
            Status::BlockedMutex(id) => {
                1u8.hash(&mut h);
                id.hash(&mut h);
            }
            Status::BlockedCondvar(id) => {
                2u8.hash(&mut h);
                id.hash(&mut h);
            }
            Status::BlockedJoin(t) => {
                3u8.hash(&mut h);
                t.hash(&mut h);
            }
            Status::Finished => 4u8.hash(&mut h),
        }
        st.ops[i].hash(&mut h);
    }
    for (k, v) in &st.holders {
        k.hash(&mut h);
        v.hash(&mut h);
    }
    for (k, v) in &st.atomics {
        k.hash(&mut h);
        v.hash(&mut h);
    }
    h.finish()
}

/// Record the schedule point `op` performed by `me`, then choose the next
/// thread to run. `me_runnable` says whether `me` could have kept running
/// (false for blocking/finishing points — those switches are forced and do
/// not count against the preemption bound).
fn advance(st: &mut ExecState, me: usize, op: &'static str, me_runnable: bool) {
    if st.aborting {
        return;
    }
    st.steps.push(ScheduleStep { thread: me, op });
    st.ops[me] += 1;
    st.sched_points += 1;
    let sig = fingerprint(st);
    st.sigs.push(sig);

    let enabled: Vec<usize> = st
        .statuses
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Status::Runnable))
        .map(|(i, _)| i)
        .collect();
    if enabled.is_empty() {
        if st.statuses.iter().all(|s| matches!(s, Status::Finished)) {
            return;
        }
        let stuck: Vec<String> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, Status::Finished))
            .map(|(i, s)| format!("t{i}:{s:?}"))
            .collect();
        st.failure
            .get_or_insert_with(|| format!("deadlock after t{me}:{op} ({})", stuck.join(", ")));
        st.aborting = true;
        return;
    }

    let candidates: Vec<usize> = if me_runnable && st.preemptions >= st.bound {
        vec![me]
    } else if me_runnable {
        let mut c = vec![me];
        c.extend(enabled.iter().copied().filter(|&t| t != me));
        c
    } else {
        enabled
    };

    let chosen = if candidates.len() == 1 {
        candidates[0]
    } else if st.pos < st.prefix.len() {
        let c = st.prefix[st.pos];
        st.pos += 1;
        if !candidates.contains(&c) {
            st.failure.get_or_insert_with(|| {
                format!("nondeterministic harness: replay chose t{c} but it is not a candidate at t{me}:{op}")
            });
            st.aborting = true;
            return;
        }
        c
    } else {
        let alts = candidates[1..].to_vec();
        let c = candidates[0];
        st.fresh.push(Frame { chosen: c, alts });
        c
    };
    if me_runnable && chosen != me {
        st.preemptions += 1;
    }
    st.current = chosen;
}

/// Park until the scheduler hands control to `me`. Unwinds with [`AbortExec`]
/// if the execution is being torn down.
fn wait_turn<'a>(
    exec: &'a ExecShared,
    mut st: StdMutexGuard<'a, ExecState>,
    me: usize,
) -> StdMutexGuard<'a, ExecState> {
    loop {
        if st.aborting {
            exec.cv.notify_all();
            drop(st);
            panic_any(AbortExec);
        }
        if st.current == me && matches!(st.statuses[me], Status::Runnable) {
            return st;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// A non-blocking schedule point: `me` is about to perform `op` and could
/// keep running. Branches the schedule, possibly handing control elsewhere.
fn yield_point(exec: &ExecShared, me: usize, op: &'static str) {
    let mut st = lock_state(exec);
    if st.aborting {
        drop(st);
        panic_any(AbortExec);
    }
    advance(&mut st, me, op, true);
    if st.aborting {
        exec.cv.notify_all();
        drop(st);
        panic_any(AbortExec);
    }
    if st.current != me {
        exec.cv.notify_all();
        let st = wait_turn(exec, st, me);
        drop(st);
    }
}

/// Mark `me` blocked with `status`, pick the next thread, and park until
/// rescheduled. The caller re-checks its wake condition afterwards.
fn block_here(exec: &ExecShared, me: usize, status: Status, op: &'static str) {
    let mut st = lock_state(exec);
    if st.aborting {
        drop(st);
        panic_any(AbortExec);
    }
    st.statuses[me] = status;
    advance(&mut st, me, op, false);
    if st.aborting {
        exec.cv.notify_all();
        drop(st);
        panic_any(AbortExec);
    }
    exec.cv.notify_all();
    let st = wait_turn(exec, st, me);
    drop(st);
}

fn wake_blocked(st: &mut ExecState, pred: impl Fn(&Status) -> bool, only_first: bool) {
    for s in st.statuses.iter_mut() {
        if pred(s) {
            *s = Status::Runnable;
            if only_first {
                return;
            }
        }
    }
}

fn finish_thread(exec: &ExecShared, me: usize, failure: Option<String>) {
    let mut st = lock_state(exec);
    st.statuses[me] = Status::Finished;
    wake_blocked(
        &mut st,
        |s| matches!(s, Status::BlockedJoin(t) if *t == me),
        false,
    );
    if let Some(msg) = failure {
        st.failure.get_or_insert(msg);
        st.aborting = true;
        exec.cv.notify_all();
        return;
    }
    if st.aborting {
        exec.cv.notify_all();
        return;
    }
    advance(&mut st, me, "finish", false);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Hooks called by the instrumented sync primitives.
// ---------------------------------------------------------------------------

/// Allocate a per-execution object id (deterministic given the schedule).
pub(crate) fn register_object() -> usize {
    match current_ctx() {
        Some(ctx) => {
            let mut st = lock_state(&ctx.exec);
            st.next_obj_id += 1;
            st.next_obj_id
        }
        None => 0,
    }
}

pub(crate) fn mutex_lock(id: usize) {
    let Some(ctx) = current_ctx() else { return };
    yield_point(&ctx.exec, ctx.me, "mutex-lock");
    loop {
        let mut st = lock_state(&ctx.exec);
        if st.aborting {
            drop(st);
            panic_any(AbortExec);
        }
        if let std::collections::btree_map::Entry::Vacant(e) = st.holders.entry(id) {
            e.insert(ctx.me);
            return;
        }
        drop(st);
        block_here(&ctx.exec, ctx.me, Status::BlockedMutex(id), "mutex-blocked");
    }
}

pub(crate) fn mutex_unlock(id: usize) {
    let Some(ctx) = current_ctx() else { return };
    let mut st = lock_state(&ctx.exec);
    st.holders.remove(&id);
    wake_blocked(
        &mut st,
        |s| matches!(s, Status::BlockedMutex(m) if *m == id),
        false,
    );
    // No schedule point here: the woken threads become candidates at the
    // next yield, which models release-then-race-to-acquire faithfully.
}

pub(crate) fn condvar_wait(cv_id: usize, mutex_id: usize) {
    let Some(ctx) = current_ctx() else { return };
    {
        // Atomically (at the model level) release the mutex and park on the
        // condvar — exactly the guarantee std::sync::Condvar::wait gives.
        let mut st = lock_state(&ctx.exec);
        if st.aborting {
            drop(st);
            panic_any(AbortExec);
        }
        st.holders.remove(&mutex_id);
        wake_blocked(
            &mut st,
            |s| matches!(s, Status::BlockedMutex(m) if *m == mutex_id),
            false,
        );
        st.statuses[ctx.me] = Status::BlockedCondvar(cv_id);
        advance(&mut st, ctx.me, "condvar-wait", false);
        if st.aborting {
            ctx.exec.cv.notify_all();
            drop(st);
            panic_any(AbortExec);
        }
        ctx.exec.cv.notify_all();
        let st = wait_turn(&ctx.exec, st, ctx.me);
        drop(st);
    }
    // Re-acquire the mutex before returning to the caller (who still holds
    // the guard object). Barging by other threads is possible and explored.
    loop {
        let mut st = lock_state(&ctx.exec);
        if st.aborting {
            drop(st);
            panic_any(AbortExec);
        }
        if let std::collections::btree_map::Entry::Vacant(e) = st.holders.entry(mutex_id) {
            e.insert(ctx.me);
            return;
        }
        drop(st);
        block_here(
            &ctx.exec,
            ctx.me,
            Status::BlockedMutex(mutex_id),
            "condvar-relock",
        );
    }
}

pub(crate) fn condvar_notify(cv_id: usize, all: bool) {
    let Some(ctx) = current_ctx() else { return };
    let op = if all { "notify-all" } else { "notify-one" };
    yield_point(&ctx.exec, ctx.me, op);
    let mut st = lock_state(&ctx.exec);
    // notify_one wakes the lowest-index waiter — a documented simplification
    // (std makes no fairness promise; lowest-index is deterministic, and the
    // woken/not-woken interleavings are still explored via scheduling).
    wake_blocked(
        &mut st,
        |s| matches!(s, Status::BlockedCondvar(c) if *c == cv_id),
        !all,
    );
}

/// Schedule point before an atomic operation.
pub(crate) fn atomic_point(op: &'static str) {
    let Some(ctx) = current_ctx() else { return };
    yield_point(&ctx.exec, ctx.me, op);
}

/// Record an atomic's current value for the state fingerprint.
pub(crate) fn atomic_value(id: usize, value: u64) {
    let Some(ctx) = current_ctx() else { return };
    let mut st = lock_state(&ctx.exec);
    st.atomics.insert(id, value);
}

// ---------------------------------------------------------------------------
// Spawning and joining model threads.
// ---------------------------------------------------------------------------

impl Sim {
    /// Spawn a model thread. The closure runs under the schedule explorer;
    /// it must be deterministic given the schedule (no wall-clock, no OS
    /// randomness). State is shared via `Arc`, as with `std::thread::spawn`.
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some(ctx) = current_ctx() else {
            panic!("Sim::spawn called outside a model-check execution");
        };
        yield_point(&ctx.exec, ctx.me, "spawn");
        let idx = {
            let mut st = lock_state(&ctx.exec);
            st.statuses.push(Status::Runnable);
            st.ops.push(0);
            st.statuses.len() - 1
        };
        let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let child_exec = Arc::clone(&self.exec);
        let child_result = Arc::clone(&result);
        let os = std::thread::Builder::new()
            .name(format!("model-t{idx}"))
            .spawn(move || {
                CTX.with(|c| {
                    *c.borrow_mut() = Some(Ctx {
                        exec: Arc::clone(&child_exec),
                        me: idx,
                    });
                });
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    // Birth gate: wait to be scheduled before running user code.
                    let st = lock_state(&child_exec);
                    let st = wait_turn(&child_exec, st, idx);
                    drop(st);
                    f()
                }));
                match outcome {
                    Ok(v) => {
                        *child_result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        finish_thread(&child_exec, idx, None);
                    }
                    Err(p) if p.is::<AbortExec>() => {
                        // Execution torn down mid-flight: just mark finished.
                        let mut st = lock_state(&child_exec);
                        st.statuses[idx] = Status::Finished;
                        child_exec.cv.notify_all();
                    }
                    Err(p) => {
                        finish_thread(&child_exec, idx, Some(panic_message(p.as_ref())));
                    }
                }
                CTX.with(|c| *c.borrow_mut() = None);
            });
        match os {
            Ok(h) => self
                .exec
                .os_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(h),
            Err(e) => panic!("model-check: failed to spawn OS thread: {e}"),
        }
        JoinHandle { idx, result }
    }
}

impl<T> JoinHandle<T> {
    /// Join the model thread, returning its result. A schedule point: the
    /// join can block, and the explorer branches around it. If the target
    /// panicked, the violation is already recorded and this unwinds the
    /// current execution.
    pub fn join(self) -> T {
        let Some(ctx) = current_ctx() else {
            panic!("JoinHandle::join called outside a model-check execution");
        };
        yield_point(&ctx.exec, ctx.me, "join");
        loop {
            let st = lock_state(&ctx.exec);
            if st.aborting {
                drop(st);
                panic_any(AbortExec);
            }
            if matches!(st.statuses[self.idx], Status::Finished) {
                drop(st);
                break;
            }
            drop(st);
            block_here(
                &ctx.exec,
                ctx.me,
                Status::BlockedJoin(self.idx),
                "join-blocked",
            );
        }
        let taken = self.result.lock().unwrap_or_else(|e| e.into_inner()).take();
        match taken {
            Some(v) => v,
            // Target panicked: its failure is recorded; unwind this execution.
            None => panic_any(AbortExec),
        }
    }
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// The exploration driver.
// ---------------------------------------------------------------------------

/// Serializes concurrent `check` calls (e.g. several `#[test]`s in one
/// binary): executions share the process-wide panic hook and the thread-local
/// context discipline, so only one exploration runs at a time.
static CHECK_LOCK: StdMutex<()> = StdMutex::new(());

/// Explore every schedule of `body` within the bounds in `opts`.
///
/// `body` runs once per execution on the calling thread (model thread 0) and
/// spawns workers through the provided [`Sim`]. It must be deterministic
/// given the schedule. Invariants are plain `assert!`s; see the module docs.
pub fn check<F>(name: &str, opts: CheckOptions, body: F) -> CheckReport
where
    F: Fn(&Sim),
{
    let _serial = CHECK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Silence the default panic hook while exploring: violating executions
    // unwind via ordinary panics, and printing a backtrace for each explored
    // failure (plus every AbortExec teardown) would flood the output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let started = Instant::now();
    let mut stack: Vec<Frame> = Vec::new();
    let mut sigs: HashSet<u64> = HashSet::new();
    let mut report = CheckReport {
        name: name.to_string(),
        executions: 0,
        sched_points: 0,
        distinct_states: 0,
        max_threads: 1,
        preemption_bound: opts.max_preemptions,
        complete: false,
        violations: Vec::new(),
        wall_ms: 0,
    };

    loop {
        if report.executions >= opts.max_executions || started.elapsed() >= opts.max_duration {
            break; // incomplete: a cap was hit
        }

        let exec = Arc::new(ExecShared {
            st: StdMutex::new(ExecState {
                statuses: vec![Status::Runnable],
                ops: vec![0],
                current: 0,
                prefix: stack.iter().map(|f| f.chosen).collect(),
                pos: 0,
                fresh: Vec::new(),
                preemptions: 0,
                bound: opts.max_preemptions,
                holders: BTreeMap::new(),
                atomics: BTreeMap::new(),
                next_obj_id: 0,
                steps: Vec::new(),
                sigs: Vec::new(),
                sched_points: 0,
                failure: None,
                aborting: false,
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        });
        let sim = Sim {
            exec: Arc::clone(&exec),
        };
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                exec: Arc::clone(&exec),
                me: 0,
            })
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&sim)));
        match outcome {
            Ok(()) => finish_thread(&exec, 0, None),
            Err(p) if p.is::<AbortExec>() => {
                let mut st = lock_state(&exec);
                st.statuses[0] = Status::Finished;
                exec.cv.notify_all();
            }
            Err(p) => finish_thread(&exec, 0, Some(panic_message(p.as_ref()))),
        }
        CTX.with(|c| *c.borrow_mut() = None);
        // Drain every OS thread of this execution before reading final state.
        loop {
            let handles: Vec<_> = exec
                .os_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
                .collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }

        let mut st = lock_state(&exec);
        report.executions += 1;
        report.sched_points += st.sched_points;
        report.max_threads = report.max_threads.max(st.statuses.len());
        sigs.extend(st.sigs.drain(..));
        let fresh: Vec<Frame> = st.fresh.drain(..).collect();
        let failure = st.failure.take();
        let steps: Vec<ScheduleStep> = st.steps.drain(..).collect();
        drop(st);

        stack.extend(fresh);
        if let Some(message) = failure {
            report.violations.push(Violation {
                message,
                schedule: steps,
            });
            if report.violations.len() >= opts.max_violations {
                break; // stopped early: incomplete by construction
            }
        }

        // Depth-first backtrack: advance the deepest frame with untried
        // alternatives; exploration is complete when none remains.
        let mut exhausted = true;
        while let Some(top) = stack.last_mut() {
            if top.alts.is_empty() {
                stack.pop();
            } else {
                top.chosen = top.alts.remove(0);
                exhausted = false;
                break;
            }
        }
        if exhausted {
            report.complete = true;
            break;
        }
    }

    std::panic::set_hook(prev_hook);
    report.distinct_states = sigs.len() as u64;
    report.wall_ms = started.elapsed().as_millis();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Condvar, Mutex};

    fn opts() -> CheckOptions {
        CheckOptions {
            max_preemptions: 3,
            ..CheckOptions::default()
        }
    }

    #[test]
    fn single_thread_is_one_execution() {
        let report = check("single", opts(), |_sim| {
            let a = AtomicU64::new(0);
            a.store(7, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 7);
        });
        assert_eq!(report.executions, 1);
        report.assert_clean();
    }

    #[test]
    fn finds_lost_update_race() {
        // Classic non-atomic read-modify-write: two threads each do
        // load-then-store(+1). Some interleaving loses an update.
        let report = check("lost-update", opts(), |sim| {
            let a = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    sim.spawn(move || {
                        let v = a.load(Ordering::SeqCst);
                        a.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2, "an increment was lost");
        });
        report.assert_caught();
        assert!(report.violations[0].message.contains("increment was lost"));
    }

    #[test]
    fn fetch_add_has_no_race() {
        let report = check("fetch-add", opts(), |sim| {
            let a = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    sim.spawn(move || {
                        a.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        report.assert_clean();
        assert!(report.executions > 1, "exploration must branch");
    }

    #[test]
    fn mutex_preserves_mutual_exclusion() {
        let report = check("mutex-incr", opts(), |sim| {
            let m = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    sim.spawn(move || {
                        let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(*m.lock().unwrap_or_else(|e| e.into_inner()), 2);
        });
        report.assert_clean();
    }

    #[test]
    fn both_orders_of_two_stores_are_observed() {
        // The explorer must visit schedules where either store lands last.
        use std::sync::Mutex as PlainMutex;
        let outcomes: Arc<PlainMutex<std::collections::HashSet<u64>>> =
            Arc::new(PlainMutex::new(std::collections::HashSet::new()));
        let outcomes_in = Arc::clone(&outcomes);
        let report = check("store-order", opts(), move |sim| {
            let a = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = [1u64, 2]
                .iter()
                .map(|&v| {
                    let a = Arc::clone(&a);
                    sim.spawn(move || a.store(v, Ordering::SeqCst))
                })
                .collect();
            for h in hs {
                h.join();
            }
            let last = a.load(Ordering::SeqCst);
            outcomes_in
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(last);
        });
        report.assert_clean();
        let seen = outcomes.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            seen.contains(&1) && seen.contains(&2),
            "missed an order: {seen:?}"
        );
    }

    #[test]
    fn detects_deadlock_on_unnotified_condvar() {
        let report = check("cv-deadlock", opts(), |sim| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let waiter = {
                let pair = Arc::clone(&pair);
                sim.spawn(move || {
                    let mut ready = pair.0.lock().unwrap_or_else(|e| e.into_inner());
                    while !*ready {
                        // Nobody ever notifies: this must deadlock.
                        ready = pair.1.wait(ready).unwrap_or_else(|e| e.into_inner());
                    }
                })
            };
            waiter.join();
        });
        report.assert_caught();
        assert!(
            report.violations[0].message.contains("deadlock"),
            "unexpected violation: {}",
            report.violations[0].message
        );
    }

    #[test]
    fn condvar_handoff_completes() {
        let report = check("cv-handoff", opts(), |sim| {
            let pair = Arc::new((Mutex::new(0u64), Condvar::new()));
            let consumer = {
                let pair = Arc::clone(&pair);
                sim.spawn(move || {
                    let mut v = pair.0.lock().unwrap_or_else(|e| e.into_inner());
                    while *v == 0 {
                        v = pair.1.wait(v).unwrap_or_else(|e| e.into_inner());
                    }
                    *v
                })
            };
            let producer = {
                let pair = Arc::clone(&pair);
                sim.spawn(move || {
                    *pair.0.lock().unwrap_or_else(|e| e.into_inner()) = 41;
                    pair.1.notify_one();
                })
            };
            producer.join();
            assert_eq!(consumer.join(), 41);
        });
        report.assert_clean();
    }
}
