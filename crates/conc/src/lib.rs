//! fingers-conc: the concurrency substrate for the FINGERS reproduction.
//!
//! Two halves:
//!
//! - [`sync`] — a drop-in shim over `std::sync`. Without the `model-check`
//!   feature it re-exports the std types verbatim, so production builds pay
//!   nothing. With the feature, `Mutex`, `Condvar` and the atomics become
//!   instrumented versions that report every operation to the model checker
//!   (and fall back to plain std behaviour when no checker is driving the
//!   current thread, so the full test suite still runs with the feature on).
//! - [`model`] — a deterministic bounded model checker in the style of loom.
//!   [`model::check`] runs a closure under every schedule the DFS explorer
//!   can reach within a context-switch (preemption) bound, serializing the
//!   shimmed threads so exactly one runs at a time and branching the schedule
//!   at every instrumented operation.
//!
//! The mining and server crates port their load-bearing structures (steal
//! deques, `MemGauge`, `CancelToken`, the sched worker pool) onto [`sync`] and
//! ship model-checked harnesses in their own `model` modules; see DESIGN.md
//! §16 for the architecture and for how to write a new harness.

#![warn(missing_docs)]

#[cfg(feature = "model-check")]
pub mod model;
pub mod sync;
