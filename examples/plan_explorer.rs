//! Plan explorer: prints the compiled execution plan — vertex order,
//! Equation (1) set-operation schedule, and symmetry-breaking
//! restrictions — for every benchmark pattern, plus a custom pattern built
//! from an edge list, and validates each against brute force.
//!
//! ```sh
//! cargo run --release --example plan_explorer
//! ```

use fingers_repro::graph::gen::erdos_renyi;
use fingers_repro::mining::{brute, count_plan};
use fingers_repro::pattern::analysis::analyze;
use fingers_repro::pattern::benchmarks::Benchmark;
use fingers_repro::pattern::{automorphisms, ExecutionPlan, Induced, Pattern};

fn show(pattern: &Pattern, induced: Induced) {
    let plan = ExecutionPlan::compile(pattern, induced);
    println!("=== {pattern} ===");
    println!(
        "automorphisms: {}, restrictions: {}",
        automorphisms(pattern).len(),
        plan.restriction_count()
    );
    print!("{plan}");
    let a = analyze(&plan);
    println!(
        "static analysis: {} ∩ / {} − / {} anti−; set-level parallelism ceiling {}; \
         deepest subtraction {:?}",
        a.mix.intersections,
        a.mix.subtractions,
        a.mix.init_antis,
        a.max_set_parallelism,
        a.deepest_subtraction_level
    );

    // Cross-validate the whole compiler on a small random graph.
    let g = erdos_renyi(16, 40, 1);
    let expected = brute::count_embeddings(&g, pattern, induced);
    let got = count_plan(&g, &plan);
    assert_eq!(
        got, expected,
        "plan disagrees with brute force for {pattern}"
    );
    println!("validated on a 16-vertex random graph: {got} embeddings ✓\n");
}

fn main() {
    for bench in Benchmark::ALL {
        for pattern in bench.patterns() {
            show(&pattern, Induced::Vertex);
        }
    }

    // A custom pattern: the "house" (4-cycle with a triangle roof).
    let house = Pattern::from_edges_named(
        5,
        &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)],
        "house",
    );
    show(&house, Induced::Vertex);
    // The same pattern, edge-induced: the plan drops its subtractions.
    show(&house, Induced::Edge);
}
