//! Quickstart: compile a pattern, mine it in software, then run both
//! accelerator models on the same graph and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::ChipConfig;
use fingers_repro::flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_repro::graph::gen::erdos_renyi;
use fingers_repro::mining::count_multi;
use fingers_repro::pattern::benchmarks::Benchmark;

fn main() {
    // 1. An input graph: any sorted-adjacency CSR graph works. Here a small
    //    random one; see `fingers_graph::io` for loading SNAP edge lists.
    let graph = erdos_renyi(300, 2400, 42);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.avg_degree()
    );

    // 2. A mining workload: the paper's tailed triangle, compiled into a
    //    pattern-aware execution plan (vertex order + set-operation
    //    schedule + symmetry breaking).
    let bench = Benchmark::Tt;
    let multi = bench.plan();
    println!("\nexecution plan:\n{}", multi.plans()[0]);

    // 3. Software reference mining (the oracle).
    let sw = count_multi(&graph, &multi);
    println!("software miner: {} embeddings", sw.total());

    // 4. The FINGERS accelerator (single PE).
    let fingers = simulate_fingers(&graph, &multi, &ChipConfig::single_pe());
    println!(
        "FINGERS  (1 PE): {} embeddings in {} cycles (IU active rate {:.1}%)",
        fingers.total_embeddings(),
        fingers.cycles,
        fingers.active_rate() * 100.0
    );

    // 5. The FlexMiner baseline (single PE).
    let flexminer = simulate_flexminer(&graph, &multi, &FlexMinerChipConfig::single_pe());
    println!(
        "FlexMiner (1 PE): {} embeddings in {} cycles",
        flexminer.total_embeddings(),
        flexminer.cycles
    );

    assert_eq!(sw.per_pattern, fingers.embeddings);
    assert_eq!(sw.per_pattern, flexminer.embeddings);
    println!(
        "\nall three agree; FINGERS speedup over FlexMiner: {:.2}×",
        flexminer.cycles as f64 / fingers.cycles as f64
    );
}
