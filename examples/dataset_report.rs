//! Dataset report: statistics and degree profiles of the six Table 1
//! stand-ins, plus an R-MAT comparison graph — the calibration view behind
//! DESIGN.md §6.
//!
//! ```sh
//! cargo run --release --example dataset_report
//! ```

use fingers_repro::graph::datasets::Dataset;
use fingers_repro::graph::gen::{rmat, RmatConfig};
use fingers_repro::graph::stats::degree_histogram;
use fingers_repro::graph::GraphStats;

fn print_graph(name: &str, stats: &GraphStats, histogram: &[(usize, usize)]) {
    println!("=== {name} ===");
    println!("{stats}");
    // A compact log-bucketed degree profile.
    let mut buckets: Vec<(usize, usize)> = Vec::new();
    for &(deg, count) in histogram {
        let bucket = if deg == 0 { 0 } else { deg.next_power_of_two() };
        match buckets.last_mut() {
            Some((b, c)) if *b == bucket => *c += count,
            _ => buckets.push((bucket, count)),
        }
    }
    print!("degree profile (≤bucket: count): ");
    for (b, c) in buckets {
        print!("≤{b}: {c}  ");
    }
    println!("\n");
}

fn main() {
    println!("Table 1 stand-ins (scaled surrogates for the SNAP datasets):\n");
    for d in Dataset::ALL {
        let g = d.load();
        let stats = GraphStats::compute(&g);
        let hist = degree_histogram(&g);
        let paper = d.paper_row();
        print_graph(
            &format!(
                "{} ({}) — paper: |V|={:.1}K avg={:.1} max={}",
                d.name(),
                d.abbrev(),
                paper.vertices / 1e3,
                paper.avg_degree,
                paper.max_degree
            ),
            &stats,
            &hist,
        );
    }

    // An R-MAT graph for comparison: similar scale to the LiveJournal
    // stand-in, Graph500 skew.
    let g = rmat(&RmatConfig::graph500(13, 80_000, 1));
    let stats = GraphStats::compute(&g);
    let hist = degree_histogram(&g);
    print_graph("R-MAT scale 13 (Graph500 skew)", &stats, &hist);
}
