//! Accelerator design-space snapshot: sweeps PE counts and IU counts for
//! one workload, printing a small scaling study like the paper's
//! Sections 6.3–6.4.
//!
//! ```sh
//! cargo run --release --example accelerator_comparison
//! ```

use fingers_repro::core::area::{pe_area, pe_area_mm2_15nm};
use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::{ChipConfig, PeConfig};
use fingers_repro::flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_repro::graph::gen::{chung_lu_power_law, ChungLuConfig};
use fingers_repro::pattern::benchmarks::Benchmark;

fn main() {
    let graph = chung_lu_power_law(&ChungLuConfig::new(3_000, 30_000, 3));
    let bench = Benchmark::Cyc;
    let multi = bench.plan();
    println!(
        "workload: {} on a {}-vertex power-law graph (avg degree {:.1})\n",
        bench.abbrev(),
        graph.vertex_count(),
        graph.avg_degree()
    );

    // --- chip-level scaling: FINGERS vs FlexMiner at equal PE counts and
    // at the paper's iso-area 20-vs-40 point ---
    println!("PEs | FINGERS cycles | FlexMiner cycles | speedup");
    for pes in [1usize, 4, 8, 20] {
        let fi = simulate_fingers(
            &graph,
            &multi,
            &ChipConfig {
                num_pes: pes,
                ..ChipConfig::default()
            },
        );
        let fm = simulate_flexminer(
            &graph,
            &multi,
            &FlexMinerChipConfig {
                num_pes: pes,
                ..FlexMinerChipConfig::default()
            },
        );
        println!(
            "{pes:>3} | {:>14} | {:>16} | {:.2}×",
            fi.cycles,
            fm.cycles,
            fm.cycles as f64 / fi.cycles as f64
        );
    }
    let fi20 = simulate_fingers(&graph, &multi, &ChipConfig::default());
    let fm40 = simulate_flexminer(&graph, &multi, &FlexMinerChipConfig::default());
    println!(
        "iso-area (20 vs 40): {:.2}×\n",
        fm40.cycles as f64 / fi20.cycles as f64
    );

    // --- PE-level scaling: IU count under the iso-area rule ---
    println!("IUs | s_l | PE area (mm², 28 nm) | cycles (1 PE)");
    for ius in [4usize, 8, 16, 24, 48] {
        let pe = PeConfig::iso_area_ius(ius);
        let area = pe_area(&pe).total_mm2();
        let mut cfg = ChipConfig::single_pe();
        let sl = pe.long_segment_len;
        cfg.pe = pe;
        let r = simulate_fingers(&graph, &multi, &cfg);
        println!("{ius:>3} | {sl:>3} | {area:>6.3} | {}", r.cycles);
    }
    println!(
        "\ndefault PE in 15 nm: {:.3} mm² (FlexMiner PE: 0.18 mm²)",
        pe_area_mm2_15nm(&PeConfig::default())
    );
}
