//! Motif census: multi-pattern mining (the paper's `3mc` workload) on a
//! social-network-style graph, demonstrating per-pattern counts and the
//! shared-trunk execution of Section 4.
//!
//! ```sh
//! cargo run --release --example motif_census
//! ```

use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::ChipConfig;
use fingers_repro::graph::gen::{chung_lu_power_law, ChungLuConfig};
use fingers_repro::mining::count_multi;
use fingers_repro::pattern::{Induced, MultiPlan, Pattern};

fn main() {
    // A power-law "social" graph: triadic structure varies with the hubs.
    let graph = chung_lu_power_law(&ChungLuConfig::new(2_000, 12_000, 7));
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // The 3-motif census: triangles + wedges, mined in one pass. The two
    // plans share their root level, so each root's neighbor list is
    // fetched once for both trunks.
    let census = MultiPlan::three_motif();
    println!(
        "plans share {} leading level(s)",
        census.shared_prefix_levels(0, 1)
    );

    let sw = count_multi(&graph, &census);
    let [triangles, wedges]: [u64; 2] = sw.per_pattern[..].try_into().expect("two patterns");
    println!("triangles: {triangles}");
    println!("wedges:    {wedges}");
    let closure = 3.0 * triangles as f64 / (3.0 * triangles as f64 + wedges as f64);
    println!("global clustering (transitivity): {closure:.4}");

    // The same census on the accelerator, 4 PEs.
    let cfg = ChipConfig {
        num_pes: 4,
        ..ChipConfig::default()
    };
    let hw = simulate_fingers(&graph, &census, &cfg);
    assert_eq!(hw.embeddings, sw.per_pattern);
    println!(
        "\nFINGERS 4-PE chip: {} cycles, {} tasks, IU active rate {:.1}%",
        hw.cycles,
        hw.tasks(),
        hw.active_rate() * 100.0
    );

    // A bigger census: add the 4-clique to the same run (any pattern set
    // compiles into one MultiPlan).
    let extended = MultiPlan::new(
        "triads+4cl",
        &[Pattern::triangle(), Pattern::wedge(), Pattern::clique(4)],
        Induced::Vertex,
    );
    let counts = count_multi(&graph, &extended);
    println!(
        "\nextended census (triangle, wedge, 4-clique): {:?}",
        counts.per_pattern
    );
}
