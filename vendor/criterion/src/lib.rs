//! Offline micro-bench harness standing in for `criterion` (see
//! `vendor/README.md`).
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock sampler: each benchmark runs `sample_size`
//! timed iterations after one warm-up iteration and prints the mean and
//! minimum time. No statistics machinery, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, preventing dead-code elimination of
/// benchmark results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench context handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Things accepted as benchmark names by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Renders the identifier string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub has a fixed single warm-up
    /// iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's measurement length is
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.into_id());
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        // Emptiness is handled by the early return above.
        #[allow(clippy::expect_used)]
        let min = self.samples.iter().min().expect("non-empty");
        println!(
            "{group}/{id}: mean {mean:?}, min {min:?} over {} samples",
            self.samples.len()
        );
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.finish();
        // One warm-up + three samples for the first bench.
        assert_eq!(runs, 4);
    }
}
