//! Offline mini property-testing harness standing in for `proptest` (see
//! `vendor/README.md`).
//!
//! Supports the subset of the real crate this workspace uses:
//!
//! - range strategies (`0u32..500`, `1usize..=8`), tuple strategies,
//!   [`collection::btree_set`], [`option::of`], and the [`Strategy`]
//!   combinators `prop_map` / `prop_flat_map`;
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, and
//!   `prop_assume!`.
//!
//! Cases are generated from a fixed seed, so runs are deterministic. There
//! is no shrinking: a failing case panics with the assertion message
//! directly (inputs are printed with the case index so a failure can be
//! reproduced by re-running the deterministic stream).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing a `BTreeSet` of elements drawn from `element`,
    /// with a target size drawn from `size` (the realized set can be
    /// smaller when duplicate draws collide, matching real-proptest
    /// semantics closely enough for these tests).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_usize(self.size.clone())
            };
            let mut out = BTreeSet::new();
            // Bounded attempts so tight value domains terminate.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` for about a quarter of cases and
    /// `Some(inner)` otherwise (real proptest's default `Some` weight is
    /// also 3:1).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_usize(0..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests over generated inputs.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases * 100 + 1_000,
                                "too many prop_assume! rejections ({rejected})"
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {case} failed: {msg}\ninputs: {}",
                                concat!($(stringify!($arg), " in ", stringify!($strat), "; "),+)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// `assert_ne!` that reports failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
