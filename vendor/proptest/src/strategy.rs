//! The [`Strategy`] trait and its core implementations.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// The mini-harness generates values directly (no shrink trees); the
/// combinator surface (`prop_map`, `prop_flat_map`) matches what the
/// workspace's tests use.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates clones of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..500 {
            let x = (5u32..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let y = (3usize..=3).generate(&mut rng);
            assert_eq!(y, 3);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic();
        let s = (1u32..5).prop_flat_map(|n| (0u32..n, Just(n)).prop_map(|(x, n)| (x, n)));
        for _ in 0..200 {
            let (x, n) = s.generate(&mut rng);
            assert!(x < n);
        }
    }
}
