//! Test-runner plumbing: configuration, the case RNG, and case outcomes.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than the real crate's 256, keeping the offline
    /// suite fast while still exploring a meaningful input space.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject(&'static str),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// Deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// The fixed-seed generator used for every property run.
    pub fn deterministic() -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(0x5EED_CAFE),
        }
    }

    /// Uniform draw from `[lo, hi]`, both inclusive.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "cannot sample empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform draw from a non-empty `usize` range.
    pub fn gen_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.inner.gen_range(range)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
