//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! downstream consumers but never serializes anything itself (reports are
//! hand-rendered markdown/CSV/JSON). This stub keeps the derive annotations
//! compiling without the real dependency: the traits are markers with
//! blanket impls, and the re-exported derives expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
