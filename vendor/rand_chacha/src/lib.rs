//! Offline stand-in for `rand_chacha` (see `vendor/README.md`).
//!
//! Provides a [`ChaCha8Rng`] with the same construction API as the real
//! crate. The stream is produced by xoshiro256++ rather than ChaCha — the
//! workspace's generators and tests rely on seeded determinism, not on the
//! exact ChaCha key stream (and nothing here is cryptographic).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator with the `rand_chacha::ChaCha8Rng` API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    /// Expands `seed` with SplitMix64 into the 256-bit xoshiro state, as
    /// the xoshiro authors recommend.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for ChaCha8Rng {
    /// xoshiro256++ step.
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn usable_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x: u32 = rng.gen_range(0..100);
        assert!(x < 100);
    }
}
