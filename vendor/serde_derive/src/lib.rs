//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace (see `vendor/README.md`).
//!
//! The real serde derives generate `Serialize`/`Deserialize` impls; the
//! vendored `serde` stub provides those traits with blanket impls instead,
//! so the derives here only need to accept the attribute position and emit
//! nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing; the blanket impl
/// in the vendored `serde` crate covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing; the blanket
/// impl in the vendored `serde` crate covers every type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
