//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the API surface this workspace uses — [`Rng`],
//! [`SeedableRng`], [`seq::SliceRandom`], and
//! [`distributions::WeightedIndex`] — on top of a single [`RngCore`]
//! abstraction. The generators behind it are deterministic, seedable, and
//! of ordinary statistical quality; they make no attempt to be
//! stream-compatible with the real crate (nothing in the workspace depends
//! on the exact stream, only on determinism per seed).

#![forbid(unsafe_code)]

/// Source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`Range` or `RangeInclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of a type with a standard distribution (`f64` in
    /// `[0, 1)`, integers uniform over their domain, `bool` fair).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Distribution sampling (the subset of `rand::distributions` used by
    //! the workspace).

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types sampleable with `rng.gen()`.
    pub trait Standard: Sized {
        /// Draws one value with the type's standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Error type for invalid [`WeightedIndex`] construction.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite, or all weights were zero.
        InvalidWeight,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => f.write_str("no weights provided"),
                WeightedError::InvalidWeight => f.write_str("invalid weight"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a slice of `f64` weights, by
    /// binary search over the cumulative-weight table.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the cumulative table.
        ///
        /// # Errors
        ///
        /// Returns [`WeightedError`] when `weights` is empty, contains a
        /// negative or non-finite weight, or sums to zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *std::borrow::Borrow::borrow(&w);
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            Ok(Self { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = f64::sample_standard(rng) * self.total;
            // partition_point returns the count of entries <= x; clamp for
            // the (measure-zero) x == total edge.
            self.cumulative
                .partition_point(|&c| c <= x)
                .min(self.cumulative.len() - 1)
        }
    }

    pub mod uniform {
        //! Uniform range sampling support for [`Rng::gen_range`](crate::Rng::gen_range).

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Integer types uniformly sampleable over a sub-range, via their
        /// embedding into `u64`.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Widens to the sampling domain.
            fn to_u64(self) -> u64;
            /// Narrows back from the sampling domain (value is always in
            /// range for the type when produced by [`sample_inclusive`]).
            fn from_u64(x: u64) -> Self;
        }

        macro_rules! impl_sample_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn to_u64(self) -> u64 {
                        self as u64
                    }
                    fn from_u64(x: u64) -> Self {
                        x as $t
                    }
                }
            )*};
        }

        impl_sample_uniform!(u8, u16, u32, u64, usize);

        /// Uniform draw from `[lo, hi]`, both inclusive, by rejection
        /// sampling (exactly uniform, no modulo bias).
        fn sample_inclusive<T: SampleUniform, R: RngCore + ?Sized>(rng: &mut R, lo: T, hi: T) -> T {
            let (lo64, hi64) = (lo.to_u64(), hi.to_u64());
            let span = hi64.wrapping_sub(lo64).wrapping_add(1);
            if span == 0 {
                // Full u64 domain: every word is in range.
                return T::from_u64(rng.next_u64());
            }
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = rng.next_u64();
                if v <= zone {
                    return T::from_u64(lo64 + v % span);
                }
            }
        }

        /// Ranges usable with [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            ///
            /// # Panics
            ///
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                let hi = T::from_u64(self.end.to_u64() - 1);
                sample_inclusive(rng, self.start, hi)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                sample_inclusive(rng, lo, hi)
            }
        }
    }
}

pub mod seq {
    //! Sequence utilities (the subset of `rand::seq` used by the
    //! workspace).

    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore};

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Counter(9);
        let dist = WeightedIndex::new([1.0, 0.0, 9.0]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..5000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 4, "{counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(&[] as &[f64]).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0, 2.0]).is_err());
    }
}
