#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
#
# Run from the repo root. Mirrors the checks a PR must pass; keep this in
# sync with the acceptance criteria in ROADMAP.md.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Smoke-run the bitmap-kernel microbench: --quick does one iteration per
# shape and asserts all three kernel tiers produce identical outputs (the
# non-timing check); pointing FINGERS_RESULTS_DIR at a nonexistent path
# keeps the checked-in results/ files untouched.
echo "==> bitmap_kernels --quick smoke (kernel-equivalence assertions)"
FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke \
  cargo run --release -q -p fingers-bench --bin bitmap_kernels -- --quick > /dev/null

echo "==> CI green"
