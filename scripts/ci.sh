#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
#
# Run from the repo root. Mirrors the checks a PR must pass; keep this in
# sync with the acceptance criteria in ROADMAP.md.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Panic-hygiene gate for library/binary code only (tests are exempt:
# --lib --bins skips test targets, and #[cfg(test)] modules are not
# compiled without --tests). Denied, not warned — every surviving expect
# carries an #[allow(clippy::expect_used)] with a §11 justification
# (DESIGN.md §11), which fingers-lint separately audits below.
echo "==> cargo clippy (unwrap/expect gate, lib+bins only)"
cargo clippy --workspace --lib --bins -- \
  -D clippy::unwrap_used -D clippy::expect_used

# Hot-path hygiene + concurrency-discipline lint: no per-embedding
# allocation and no unchecked indexing in annotated hot-path modules
# without a reasoned waiver, every unwrap/expect allow must cite the §11
# policy, every atomic Ordering:: site carries an `ord:` justification
# tag (Relaxed only inside the allowlist), `.lock()` sites in
# lock-order-marked files respect the declared ranking, and `unsafe`
# stays inside the two audited islands (DESIGN.md §12/§16 for the
# grammars). The binary exits non-zero on any violation — this is the
# -D-style hard gate.
echo "==> fingers-lint (hot-path + atomic/lock/unsafe discipline audit)"
cargo run --release -q -p fingers-verify --bin fingers-lint -- .
cargo run --release -q -p fingers-verify --no-default-features --bin fingers-lint -- .

# Static plan verification smoke: the full benchmark pattern set must
# verify clean (exit 0), and a deliberately corrupted plan must be caught
# with the verifier's dedicated exit code (7).
echo "==> verify-plan corpus smoke"
for spec in tc 4cl 5cl tt cyc dia wedge house bull gem butterfly; do
  cargo run --release -q -p fingers-cli --bin fingers-mine -- \
    verify-plan "$spec" > /dev/null
done
if cargo run --release -q -p fingers-cli --bin fingers-mine -- \
    verify-plan tt --mutate drop-init > /dev/null 2>&1; then
  echo "verify-plan smoke: mutated plan was not rejected" >&2
  exit 1
else
  code=$?
  if [ "$code" -ne 7 ]; then
    echo "verify-plan smoke: mutated plan exited $code (want 7)" >&2
    exit 1
  fi
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Smoke-run the bitmap-kernel microbench: --quick does one iteration per
# shape and asserts all three kernel tiers produce identical outputs (the
# non-timing check); pointing FINGERS_RESULTS_DIR at a nonexistent path
# keeps the checked-in results/ files untouched.
echo "==> bitmap_kernels --quick smoke (kernel-equivalence assertions)"
FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke \
  cargo run --release -q -p fingers-bench --bin bitmap_kernels -- --quick > /dev/null

# Smoke-run the count-fusion experiment: --quick asserts fused and unfused
# counts are bit-identical across a threads × bitmap-mode grid (the
# non-timing check), same gating as bitmap_kernels above.
echo "==> count_fusion --quick smoke (fused/unfused equivalence assertions)"
FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke \
  cargo run --release -q -p fingers-bench --bin count_fusion -- --quick > /dev/null

# Smoke-run the SIMD-kernel experiment: --quick asserts every SIMD kernel
# form (materializing, count, bounded count, word-AND popcount) is
# bit-identical to the merge reference (the non-timing check), same
# gating as the smokes above.
echo "==> simd_kernels --quick smoke (simd/scalar equivalence assertions)"
FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke \
  cargo run --release -q -p fingers-bench --bin simd_kernels -- --quick > /dev/null

# Smoke-run the steal-balance experiment: --quick asserts the static,
# shared-cursor, and work-stealing schedulers all produce the serial
# count on the power-law hub graph at 1 and 8 threads.
echo "==> steal_balance --quick smoke (parallel==serial at 1/8 threads)"
FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke \
  cargo run --release -q -p fingers-bench --bin steal_balance -- --quick > /dev/null

# Scalar-fallback job: the setops crate must stay green with the `simd`
# cargo feature disabled (every vector entry point degrades to pure
# delegation), so non-x86_64 targets build and test identically.
echo "==> fingers-setops --no-default-features (scalar-fallback job)"
cargo test -q -p fingers-setops --no-default-features

# Chaos jobs. The fault-injection suite drives the engine through the
# seeded chaos plan (typed failures, bit-identical recovery); the second
# run disables the forwarded `simd` feature, proving the scalar-fallback
# engine degrades identically under the same fault streams. The soak
# smoke then storms the governed daemon once per seed of the fixed
# matrix (the same seeds `BENCH_soak_chaos.json` checks in).
echo "==> fault-injection suite (default + scalar fallback)"
cargo test -q -p fingers-mining --test fault_injection
cargo test -q -p fingers-mining --no-default-features --test fault_injection
echo "==> chaos soak smoke (fixed 3-seed matrix)"
for seed in 11 23 47; do
  FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke FINGERS_CHAOS_SEED="$seed" \
    cargo run --release -q -p fingers-bench --bin soak_chaos -- --quick > /dev/null
done

# Model-check job: exhaust the bounded interleaving space of the deque,
# cancel, gauge, phoenix-rebuild, and degradation-ladder protocols.
# Release mode because exploration is exponential in schedule points;
# the wall-clock budget is enforced per harness (CheckOptions carries a
# max_duration timeout) and every invariant test *asserts* completeness,
# so a state-space blowup fails loudly instead of truncating silently.
# The conc crate's own suite also proves the explorer catches a seeded
# lost-update and deadlock; the mining suite proves the seeded peek/pop
# TOCTOU bug in claim_racy is still caught. The second pass drops
# default features, proving the instrumented shim and harnesses need
# nothing from the simd stack.
echo "==> model-check job (bounded schedule exploration, default + no-default features)"
cargo test -q --release -p fingers-conc --features model-check
cargo test -q --release -p fingers-mining --features model-check --test model_check
cargo test -q --release -p fingers-server --features model-check --test model_check
cargo test -q --release -p fingers-mining --no-default-features --features model-check --test model_check
cargo test -q --release -p fingers-server --no-default-features --features model-check --test model_check
# State-space stats + seeded-bug gate: conc_check exits non-zero if any
# invariant harness reports a violation/truncation or the racy fixture's
# bug goes uncaught (its JSON is what BENCH_conc_check.json records).
cargo run --release -q -p fingers-server --features model-check --bin conc_check > /dev/null

# Checkpoint/resume smoke: run the first two sections of a quick run_all,
# stop (simulating an interruption), resume, and assert the manifest ends
# with every section completed exactly once.
echo "==> run_all --quick checkpoint/resume smoke"
RESUME_DIR="$(mktemp -d)"
trap 'rm -rf "$RESUME_DIR"' EXIT
FINGERS_RESULTS_DIR="$RESUME_DIR" FINGERS_MAX_SECTIONS=2 \
  cargo run --release -q -p fingers-bench --bin run_all -- --quick > /dev/null
FINGERS_RESULTS_DIR="$RESUME_DIR" \
  cargo run --release -q -p fingers-bench --bin run_all -- --quick --resume > /dev/null
for section in table1 table2 fig9 fig10 fig11 fig12 fig13 table3 \
               parallelism bitmap_kernels count_fusion simd_kernels \
               steal_balance energy ablations service_latency soak_chaos; do
  n="$(grep -c "\"section\": \"$section\"" "$RESUME_DIR/run_all_manifest.jsonl" || true)"
  if [ "$n" -ne 1 ]; then
    echo "resume smoke: section $section appears $n times in the manifest (want 1)" >&2
    exit 1
  fi
done

# Daemon smoke: start the query service, drive a scripted client mix
# (successful count checked against the one-shot --json schema, a
# rejected-unsound plan, a deadline expiry, an explicit cancellation of a
# queued query, stats), then assert clean shutdown and the documented
# exit codes. --workers 1 serialises the pool so the cancellation target
# deterministically queues behind the ~3 s "plug" query.
echo "==> daemon smoke (serve/client query mix + clean shutdown)"
MINE=target/release/fingers-mine
DAEMON_DIR="$(mktemp -d)"
trap 'rm -rf "$RESUME_DIR" "$DAEMON_DIR"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null; [ -n "${SERVE2_PID:-}" ] && kill "$SERVE2_PID" 2>/dev/null || true' EXIT
SOCK="$DAEMON_DIR/fingers.sock"
"$MINE" serve --socket "$SOCK" \
  --load g=gen:pl:3000:36000:7 --load slow=gen:pl:4000:80000:18 \
  --workers 1 --queue-depth 4 --max-threads 1 \
  > "$DAEMON_DIR/serve.log" 2>&1 &
SERVE_PID=$!
# Readiness probe: poll the ping op until the daemon answers ok. Unlike
# waiting for the socket file, a ping round-trip proves the listener,
# scheduler pool, and gauge are all live before the mix starts.
ready=0
for _ in $(seq 1 100); do
  if "$MINE" client --socket "$SOCK" '{"op":"ping"}' 2>/dev/null \
      | grep -q '"status":"ok"'; then
    ready=1
    break
  fi
  sleep 0.1
done
[ "$ready" -eq 1 ] || { echo "daemon smoke: daemon never answered ping" >&2; exit 1; }

# Successful count (exit 0) whose total matches the one-shot --json run.
RESP="$("$MINE" client --socket "$SOCK" \
  '{"op":"count","graph":"g","patterns":["tc"],"threads":1}')"
echo "$RESP" | grep -q '"status":"ok"' \
  || { echo "daemon smoke: count response not ok: $RESP" >&2; exit 1; }
DAEMON_TOTAL="$(echo "$RESP" | sed 's/.*"total":\([0-9]*\).*/\1/')"
ONESHOT_TOTAL="$("$MINE" --graph gen:pl:3000:36000:7 --pattern tc --threads 1 --json \
  | sed 's/.*"total":\([0-9]*\).*/\1/')"
if [ "$DAEMON_TOTAL" != "$ONESHOT_TOTAL" ]; then
  echo "daemon smoke: daemon total $DAEMON_TOTAL != one-shot total $ONESHOT_TOTAL" >&2
  exit 1
fi

# An unsound plan is rejected with the verifier exit code (7).
set +e
"$MINE" client --socket "$SOCK" \
  '{"op":"verify-plan","pattern":"tt","mutate":"drop-init"}' > /dev/null
code=$?
set -e
if [ "$code" -ne 7 ]; then
  echo "daemon smoke: unsound verify-plan exited $code (want 7)" >&2
  exit 1
fi

# A deadline expiry reports a cancelled status (exit 9, reason deadline).
set +e
DEADLINE_RESP="$("$MINE" client --socket "$SOCK" \
  '{"op":"count","graph":"slow","patterns":["6cl"],"timeout_ms":1}')"
code=$?
set -e
if [ "$code" -ne 9 ]; then
  echo "daemon smoke: deadline query exited $code (want 9)" >&2
  exit 1
fi
echo "$DEADLINE_RESP" | grep -q '"reason":"deadline"' \
  || { echo "daemon smoke: deadline response: $DEADLINE_RESP" >&2; exit 1; }

# Explicit cancel: the plug occupies the single worker, the victim queues
# behind it and is cancelled while waiting; its client must exit 9 with a
# cancelled reason and no counts.
"$MINE" client --socket "$SOCK" \
  '{"op":"count","id":"plug","graph":"slow","patterns":["6cl"]}' \
  > "$DAEMON_DIR/plug.out" 2>&1 &
PLUG_PID=$!
sleep 0.3
"$MINE" client --socket "$SOCK" \
  '{"op":"count","id":"victim","graph":"slow","patterns":["6cl"]}' \
  > "$DAEMON_DIR/victim.out" 2>&1 &
VICTIM_PID=$!
found=0
for _ in $(seq 1 50); do
  if "$MINE" client --socket "$SOCK" '{"op":"cancel","id":"victim"}' \
      | grep -q '"found":true'; then
    found=1
    break
  fi
  sleep 0.1
done
[ "$found" -eq 1 ] || { echo "daemon smoke: cancel never found the victim" >&2; exit 1; }
set +e
wait "$VICTIM_PID"
code=$?
set -e
if [ "$code" -ne 9 ]; then
  echo "daemon smoke: cancelled victim exited $code (want 9)" >&2
  exit 1
fi
grep -q '"reason":"cancelled"' "$DAEMON_DIR/victim.out" \
  || { echo "daemon smoke: victim response: $(cat "$DAEMON_DIR/victim.out")" >&2; exit 1; }
if grep -q '"counts"' "$DAEMON_DIR/victim.out"; then
  echo "daemon smoke: cancelled victim leaked partial counts" >&2
  exit 1
fi
"$MINE" client --socket "$SOCK" '{"op":"cancel","id":"plug"}' > /dev/null
set +e
wait "$PLUG_PID"
set -e

# Stats reflect the mix, then shutdown: the client sees ok (exit 0), the
# daemon exits 0 and removes its socket.
"$MINE" client --socket "$SOCK" '{"op":"stats"}' | grep -q '"cancelled":' \
  || { echo "daemon smoke: stats response missing scheduler counters" >&2; exit 1; }
"$MINE" client --socket "$SOCK" '{"op":"shutdown"}' | grep -q '"status":"ok"' \
  || { echo "daemon smoke: shutdown was not acknowledged" >&2; exit 1; }
set +e
wait "$SERVE_PID"
code=$?
set -e
SERVE_PID=""
if [ "$code" -ne 0 ]; then
  echo "daemon smoke: daemon exited $code (want 0)" >&2
  exit 1
fi
[ ! -S "$SOCK" ] || { echo "daemon smoke: socket file survived shutdown" >&2; exit 1; }

# Governance smoke: a daemon whose engine carries a 1-byte per-query
# budget must fail a heavy count typed (`mem-budget`, client exit 11,
# no counts), and SIGTERM must take the daemon down cleanly — exit 0,
# socket removed — via the signal path rather than the protocol
# shutdown op exercised above.
echo "==> governance smoke (mem-budget exit 11 + SIGTERM clean shutdown)"
SOCK2="$DAEMON_DIR/fingers-governed.sock"
"$MINE" serve --socket "$SOCK2" --load g=gen:pl:3000:36000:7 \
  --workers 1 --query-mem-budget 1 \
  > "$DAEMON_DIR/serve2.log" 2>&1 &
SERVE2_PID=$!
ready=0
for _ in $(seq 1 100); do
  if "$MINE" client --socket "$SOCK2" '{"op":"ping"}' 2>/dev/null \
      | grep -q '"gauge_bytes"'; then
    ready=1
    break
  fi
  sleep 0.1
done
[ "$ready" -eq 1 ] || { echo "governance smoke: daemon never answered ping" >&2; exit 1; }
set +e
BUDGET_RESP="$("$MINE" client --socket "$SOCK2" \
  '{"op":"count","graph":"g","patterns":["4cl"],"threads":1}')"
code=$?
set -e
if [ "$code" -ne 11 ]; then
  echo "governance smoke: budget-violating query exited $code (want 11)" >&2
  exit 1
fi
echo "$BUDGET_RESP" | grep -q '"kind":"mem-budget"' \
  || { echo "governance smoke: budget response: $BUDGET_RESP" >&2; exit 1; }
if echo "$BUDGET_RESP" | grep -q '"counts"'; then
  echo "governance smoke: budget abort leaked partial counts" >&2
  exit 1
fi
kill -TERM "$SERVE2_PID"
set +e
wait "$SERVE2_PID"
code=$?
set -e
SERVE2_PID=""
if [ "$code" -ne 0 ]; then
  echo "governance smoke: SIGTERM shutdown exited $code (want 0)" >&2
  exit 1
fi
[ ! -S "$SOCK2" ] || { echo "governance smoke: socket survived SIGTERM" >&2; exit 1; }

echo "==> CI green"
