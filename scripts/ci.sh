#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
#
# Run from the repo root. Mirrors the checks a PR must pass; keep this in
# sync with the acceptance criteria in ROADMAP.md.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> CI green"
