#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, tests.
#
# Run from the repo root. Mirrors the checks a PR must pass; keep this in
# sync with the acceptance criteria in ROADMAP.md.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Panic-hygiene gate for library/binary code only (tests are exempt:
# --lib --bins skips test targets, and #[cfg(test)] modules are not
# compiled without --tests). Denied, not warned — every surviving expect
# carries an #[allow(clippy::expect_used)] with a §11 justification
# (DESIGN.md §11), which fingers-lint separately audits below.
echo "==> cargo clippy (unwrap/expect gate, lib+bins only)"
cargo clippy --workspace --lib --bins -- \
  -D clippy::unwrap_used -D clippy::expect_used

# Hot-path hygiene lint: no per-embedding allocation and no unchecked
# indexing in annotated hot-path modules without a reasoned waiver, and
# every unwrap/expect allow must cite the §11 policy (see DESIGN.md
# "Static verification" for the annotation grammar).
echo "==> fingers-lint (hot-path allocation/indexing/panic-hygiene audit)"
cargo run --release -q -p fingers-verify --bin fingers-lint -- .

# Static plan verification smoke: the full benchmark pattern set must
# verify clean (exit 0), and a deliberately corrupted plan must be caught
# with the verifier's dedicated exit code (7).
echo "==> verify-plan corpus smoke"
for spec in tc 4cl 5cl tt cyc dia wedge house bull gem butterfly; do
  cargo run --release -q -p fingers-cli --bin fingers-mine -- \
    verify-plan "$spec" > /dev/null
done
if cargo run --release -q -p fingers-cli --bin fingers-mine -- \
    verify-plan tt --mutate drop-init > /dev/null 2>&1; then
  echo "verify-plan smoke: mutated plan was not rejected" >&2
  exit 1
else
  code=$?
  if [ "$code" -ne 7 ]; then
    echo "verify-plan smoke: mutated plan exited $code (want 7)" >&2
    exit 1
  fi
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# Smoke-run the bitmap-kernel microbench: --quick does one iteration per
# shape and asserts all three kernel tiers produce identical outputs (the
# non-timing check); pointing FINGERS_RESULTS_DIR at a nonexistent path
# keeps the checked-in results/ files untouched.
echo "==> bitmap_kernels --quick smoke (kernel-equivalence assertions)"
FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke \
  cargo run --release -q -p fingers-bench --bin bitmap_kernels -- --quick > /dev/null

# Smoke-run the count-fusion experiment: --quick asserts fused and unfused
# counts are bit-identical across a threads × bitmap-mode grid (the
# non-timing check), same gating as bitmap_kernels above.
echo "==> count_fusion --quick smoke (fused/unfused equivalence assertions)"
FINGERS_RESULTS_DIR=/nonexistent-fingers-ci-smoke \
  cargo run --release -q -p fingers-bench --bin count_fusion -- --quick > /dev/null

# Checkpoint/resume smoke: run the first two sections of a quick run_all,
# stop (simulating an interruption), resume, and assert the manifest ends
# with every section completed exactly once.
echo "==> run_all --quick checkpoint/resume smoke"
RESUME_DIR="$(mktemp -d)"
trap 'rm -rf "$RESUME_DIR"' EXIT
FINGERS_RESULTS_DIR="$RESUME_DIR" FINGERS_MAX_SECTIONS=2 \
  cargo run --release -q -p fingers-bench --bin run_all -- --quick > /dev/null
FINGERS_RESULTS_DIR="$RESUME_DIR" \
  cargo run --release -q -p fingers-bench --bin run_all -- --quick --resume > /dev/null
for section in table1 table2 fig9 fig10 fig11 fig12 fig13 table3 \
               parallelism bitmap_kernels count_fusion energy ablations; do
  n="$(grep -c "\"section\": \"$section\"" "$RESUME_DIR/run_all_manifest.jsonl" || true)"
  if [ "$n" -ne 1 ]; then
    echo "resume smoke: section $section appears $n times in the manifest (want 1)" >&2
    exit 1
  fi
done

echo "==> CI green"
