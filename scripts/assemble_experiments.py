#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from the run_all transcript.

Usage: python3 scripts/assemble_experiments.py
Reads:  experiments_preamble.md.tmpl, run_all_output.md
Writes: EXPERIMENTS.md
"""
import re
import sys

def main() -> int:
    tmpl = open("scripts/experiments_preamble.md.tmpl").read()
    transcript = open("run_all_output.md").read()

    def grab(section: str):
        # geometric mean / maximum lines of a figure section
        m = re.search(
            rf"## Figure {section}.*?geometric mean: ([0-9.]+)×.*?maximum: ([0-9.]+)×",
            transcript,
            re.S,
        )
        if not m:
            print(f"warning: could not find Figure {section} aggregates", file=sys.stderr)
            return ("?", "?")
        return (m.group(1) + "×", m.group(2) + "×")

    geo9, max9 = grab("9")
    geo10, max10 = grab("10")
    out = (
        tmpl.replace("{GEO9}", geo9)
        .replace("{MAX9}", max9)
        .replace("{GEO10}", geo10)
        .replace("{MAX10}", max10)
    )
    out += transcript
    open("EXPERIMENTS.md", "w").write(out)
    print(f"EXPERIMENTS.md written ({len(out)} bytes)")
    return 0

if __name__ == "__main__":
    raise SystemExit(main())
