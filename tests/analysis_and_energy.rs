//! Integration tests for the analysis-layer extensions: static plan
//! analysis, energy estimation, and the parallelism-profile statistics —
//! checking that the static predictions and the dynamic measurements agree
//! with each other and with the paper's Section 6.2 reasoning.

use fingers_repro::core::area::energy_estimate;
use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::ChipConfig;
use fingers_repro::graph::gen::{chung_lu_power_law, ChungLuConfig};
use fingers_repro::pattern::analysis::analyze;
use fingers_repro::pattern::benchmarks::Benchmark;
use fingers_repro::pattern::{ExecutionPlan, Induced};

#[test]
fn static_set_parallelism_predicts_dynamic_ops_per_task() {
    // Cliques: static ceiling ≤ 1 distinct op per level → dynamic ops/task
    // must stay near 1. Tailed triangle: static ceiling ≥ 2 → dynamic
    // ops/task must exceed the clique's.
    let g = chung_lu_power_law(&ChungLuConfig::new(400, 3200, 11));
    let run = |b: Benchmark| {
        let r = simulate_fingers(&g, &b.plan(), &ChipConfig::single_pe());
        r.pes[0].avg_ops_per_task()
    };
    let clique_ops = run(Benchmark::Cl4);
    let tt_ops = run(Benchmark::Tt);
    assert!(
        tt_ops > clique_ops,
        "tt {tt_ops:.2} ops/task should exceed 4cl {clique_ops:.2}"
    );

    let clique_static = analyze(&ExecutionPlan::compile(
        &fingers_repro::pattern::Pattern::clique(4),
        Induced::Vertex,
    ));
    assert!(clique_static.max_set_parallelism <= 1);
    let tt_static = analyze(&ExecutionPlan::compile(
        &fingers_repro::pattern::Pattern::tailed_triangle(),
        Induced::Vertex,
    ));
    assert!(tt_static.max_set_parallelism >= 2);
}

#[test]
fn energy_totals_are_positive_and_decomposed() {
    let g = chung_lu_power_law(&ChungLuConfig::new(300, 2000, 5));
    let r = simulate_fingers(&g, &Benchmark::Cyc.plan(), &ChipConfig::single_pe());
    let e = energy_estimate(&r, 1);
    assert!(e.compute_uj > 0.0);
    assert!(e.static_uj > 0.0);
    assert!(e.total_uj() >= e.compute_uj + e.static_uj);
    // Components sum to the total.
    let sum = e.compute_uj + e.cache_uj + e.dram_uj + e.static_uj;
    assert!((sum - e.total_uj()).abs() < 1e-9);
}

#[test]
fn faster_execution_means_less_static_energy() {
    let g = chung_lu_power_law(&ChungLuConfig::new(400, 3200, 7));
    let multi = Benchmark::Tt.plan();
    let one = simulate_fingers(
        &g,
        &multi,
        &ChipConfig {
            num_pes: 1,
            ..ChipConfig::default()
        },
    );
    let four = simulate_fingers(
        &g,
        &multi,
        &ChipConfig {
            num_pes: 4,
            ..ChipConfig::default()
        },
    );
    // Per-PE static power × 4 PEs, but ~4× shorter runtime → static energy
    // roughly flat while runtime drops.
    let e1 = energy_estimate(&one, 1);
    let e4 = energy_estimate(&four, 4);
    assert!(four.cycles < one.cycles);
    assert!(
        e4.static_uj < 2.0 * e1.static_uj,
        "e4 {} vs e1 {}",
        e4.static_uj,
        e1.static_uj
    );
}

#[test]
fn parallelism_profile_distinguishes_patterns() {
    let g = chung_lu_power_law(&ChungLuConfig::new(500, 5000, 13));
    let profile = |b: Benchmark| {
        let r = simulate_fingers(&g, &b.plan(), &ChipConfig::single_pe());
        let pe = &r.pes[0];
        (
            pe.avg_group_size(),
            pe.avg_ops_per_task(),
            pe.avg_workloads_per_op(),
        )
    };
    let (g_tc, o_tc, w_tc) = profile(Benchmark::Tc);
    let (_, o_tt, w_tt) = profile(Benchmark::Tt);
    assert!(g_tc >= 1.0);
    assert!(o_tt > o_tc, "tt set-level {o_tt:.2} vs tc {o_tc:.2}");
    assert!(w_tc >= 1.0 && w_tt >= 1.0);
}
