//! Cross-crate property-based tests: invariants that must hold for every
//! random graph, pattern, and configuration.

use proptest::prelude::*;

use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::{ChipConfig, PeConfig};
use fingers_repro::graph::{CsrGraph, GraphBuilder, VertexId};
use fingers_repro::mining::{count_benchmark, count_benchmark_parallel};
use fingers_repro::pattern::benchmarks::Benchmark;
use fingers_repro::setops::{
    bitmap, galloping, merge, segmented, simd, SegmentedConfig, SetOpKind,
};

/// Strategy: a random small graph as an edge set over `n` vertices.
fn graph_strategy(max_n: VertexId, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::btree_set((0..n, 0..n), 0..max_edges).prop_map(move |edges| {
            GraphBuilder::new()
                .edges(edges)
                .vertex_count(n as usize)
                .build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Permuting vertex IDs never changes embedding counts (isomorphism
    /// invariance of the whole stack, including symmetry breaking).
    #[test]
    fn counts_are_isomorphism_invariant(g in graph_strategy(24, 80), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = g.vertex_count();
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        perm.shuffle(&mut rng);
        let permuted = GraphBuilder::new()
            .edges(g.edges().map(|(u, v)| (perm[u as usize], perm[v as usize])))
            .vertex_count(n)
            .build();
        for bench in [Benchmark::Tc, Benchmark::Tt, Benchmark::Cyc, Benchmark::Dia] {
            let a = count_benchmark(&g, bench).per_pattern;
            let b = count_benchmark(&permuted, bench).per_pattern;
            prop_assert_eq!(a, b, "{}", bench);
        }
    }

    /// Isolated vertices never change counts.
    #[test]
    fn isolated_vertices_are_inert(g in graph_strategy(20, 60), extra in 1usize..10) {
        let padded = GraphBuilder::new()
            .edges(g.edges())
            .vertex_count(g.vertex_count() + extra)
            .build();
        for bench in [Benchmark::Tc, Benchmark::Mc3] {
            prop_assert_eq!(
                count_benchmark(&g, bench).per_pattern,
                count_benchmark(&padded, bench).per_pattern
            );
        }
    }

    /// Adding an edge never decreases clique counts (monotonicity).
    #[test]
    fn clique_counts_are_edge_monotone(g in graph_strategy(16, 50), a in 0u32..16, b in 0u32..16) {
        prop_assume!(a != b);
        prop_assume!((a as usize) < g.vertex_count() && (b as usize) < g.vertex_count());
        let before = count_benchmark(&g, Benchmark::Cl4).total();
        let bigger = GraphBuilder::new()
            .edges(g.edges())
            .edge(a, b)
            .vertex_count(g.vertex_count())
            .build();
        let after = count_benchmark(&bigger, Benchmark::Cl4).total();
        prop_assert!(after >= before);
    }

    /// The accelerator agrees with the software miner on arbitrary graphs
    /// and odd PE configurations (the fuzzing version of the end-to-end
    /// agreement test).
    #[test]
    fn accelerator_matches_miner_on_random_graphs(
        g in graph_strategy(20, 70),
        ius in 1usize..30,
        group in 1usize..20,
    ) {
        let bench = Benchmark::Tt;
        let expected = count_benchmark(&g, bench).per_pattern;
        let mut cfg = ChipConfig::single_pe();
        cfg.pe = PeConfig {
            num_ius: ius,
            max_group_size: group,
            ..PeConfig::default()
        };
        let r = simulate_fingers(&g, &bench.plan(), &cfg);
        prop_assert_eq!(r.embeddings, expected);
    }

    /// All five kernel families agree on all three operations: whole-list
    /// merge (the functional reference), galloping (the software miner's
    /// skew fast path, including its into-buffer variant), the segmented
    /// hardware pipeline, the dense-bitmap tier (probing the long
    /// operand's `NeighborBitmap` exactly as the miner's hub cache does),
    /// and the SIMD tier (materializing, count, and bounded-count forms) —
    /// on neighbor lists taken from real graphs (complements the
    /// uniform-random unit property tests).
    #[test]
    fn merge_galloping_segmented_bitmap_agree_on_graph_lists(
        g in graph_strategy(30, 200),
        a in 0u32..30,
        b in 0u32..30,
    ) {
        prop_assume!((a as usize) < g.vertex_count() && (b as usize) < g.vertex_count());
        let la = g.neighbors(a);
        let lb = g.neighbors(b);
        let cfg = SegmentedConfig::default();
        let bm = fingers_repro::graph::hubs::neighbor_bitmap(&g, b);
        let mut buf = Vec::new();
        for kind in SetOpKind::ALL {
            let expected = merge::apply(kind, la, lb);
            let galloped = galloping::apply(kind, la, lb);
            prop_assert_eq!(&galloped, &expected, "galloping {}", kind);
            galloping::apply_into(kind, la, lb, &mut buf);
            prop_assert_eq!(&buf, &expected, "galloping-into {}", kind);
            let got = segmented::execute(kind, la, lb, &cfg);
            prop_assert_eq!(&got.result, &expected, "segmented {}", kind);
            bitmap::apply_into(kind, la, &bm, &mut buf);
            prop_assert_eq!(&buf, &expected, "bitmap {}", kind);
            simd::apply_into(kind, la, lb, &mut buf);
            prop_assert_eq!(&buf, &expected, "simd {}", kind);
            prop_assert_eq!(
                simd::count(kind, la, lb),
                merge::count(kind, la, lb),
                "simd count {}", kind
            );
            let bound = la.first().copied();
            prop_assert_eq!(
                simd::count_bounded(kind, la, lb, bound),
                merge::count_bounded(kind, la, lb, bound),
                "simd count_bounded {}", kind
            );
        }
    }

    /// The bitmap toggle (and hub/cache sizing) never changes counts — the
    /// end-to-end fuzzing complement of the per-kernel agreement above.
    #[test]
    fn bitmap_tier_never_changes_counts(
        g in graph_strategy(24, 90),
        hubs in 0usize..20,
        slots in 0usize..4,
        threads in 1usize..4,
    ) {
        use fingers_repro::mining::{count_benchmark_parallel_with, EngineConfig};
        let cfg = EngineConfig {
            bitmap_hubs: hubs,
            bitmap_cache_slots: slots,
            ..EngineConfig::default()
        };
        for bench in [Benchmark::Tc, Benchmark::Tt] {
            prop_assert_eq!(
                count_benchmark_parallel_with(&g, bench, threads, &cfg),
                count_benchmark(&g, bench),
                "{} hubs={} slots={} threads={}", bench, hubs, slots, threads
            );
        }
    }

    /// Terminal-count fusion never changes counts, on arbitrary random
    /// graphs, regardless of the bitmap tier or thread count it composes
    /// with — the fuzzing complement of the fixed-grid equivalence sweep
    /// in the `count_fusion` experiment.
    #[test]
    fn count_fusion_never_changes_counts(
        g in graph_strategy(24, 90),
        hubs in 0usize..20,
        threads in 1usize..4,
    ) {
        use fingers_repro::mining::{count_benchmark_parallel_with, EngineConfig};
        let fused = EngineConfig { bitmap_hubs: hubs, ..EngineConfig::default() };
        let unfused = EngineConfig {
            bitmap_hubs: hubs,
            fuse_terminal_counts: false,
            ..EngineConfig::default()
        };
        for bench in [Benchmark::Tc, Benchmark::Tt, Benchmark::Cyc] {
            prop_assert_eq!(
                count_benchmark_parallel_with(&g, bench, threads, &fused),
                count_benchmark_parallel_with(&g, bench, threads, &unfused),
                "{} hubs={} threads={}", bench, hubs, threads
            );
        }
    }

    /// The SIMD-tier and work-stealing toggles never change counts, on
    /// arbitrary random graphs, at any thread count, composed with any hub
    /// budget — the fuzzing complement of the fixed-grid determinism sweep.
    #[test]
    fn simd_and_stealing_toggles_never_change_counts(
        g in graph_strategy(24, 90),
        hubs in 0usize..20,
        threads in 1usize..9,
        use_simd in proptest::option::of(0u8..1).prop_map(|o| o.is_none()),
        steal in proptest::option::of(0u8..1).prop_map(|o| o.is_none()),
    ) {
        use fingers_repro::mining::{count_benchmark_parallel_with, EngineConfig};
        let cfg = EngineConfig {
            bitmap_hubs: hubs,
            simd: use_simd,
            work_stealing: steal,
            ..EngineConfig::default()
        };
        for bench in [Benchmark::Tc, Benchmark::Tt] {
            prop_assert_eq!(
                count_benchmark_parallel_with(&g, bench, threads, &cfg),
                count_benchmark(&g, bench),
                "{} hubs={} threads={} simd={} steal={}",
                bench, hubs, threads, use_simd, steal
            );
        }
    }

    /// The task-parallel miner equals the sequential miner on arbitrary
    /// random graphs at every thread count (the fuzzing complement of the
    /// fixed-dataset determinism test).
    #[test]
    fn parallel_counts_match_sequential_on_random_graphs(
        g in graph_strategy(24, 90),
        threads in 1usize..5,
    ) {
        for bench in [Benchmark::Tc, Benchmark::Cyc, Benchmark::Mc3] {
            prop_assert_eq!(
                count_benchmark_parallel(&g, bench, threads),
                count_benchmark(&g, bench),
                "{} at {} threads", bench, threads
            );
        }
    }

    /// Simulated time is positive and at least the pure compute time lower
    /// bound whenever any work exists.
    #[test]
    fn cycles_exceed_busy_per_iu(g in graph_strategy(20, 60)) {
        let r = simulate_fingers(&g, &Benchmark::Tc.plan(), &ChipConfig::single_pe());
        let pe = &r.pes[0];
        if pe.tasks > 0 {
            prop_assert!(r.cycles > 0);
            prop_assert!(pe.iu_busy_cycles <= r.cycles * pe.num_ius as u64);
        }
    }
}
