//! Determinism: every layer of the reproduction is bit-for-bit repeatable,
//! which is what makes the evaluation harness's numbers citable.

use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::ChipConfig;
use fingers_repro::flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_repro::graph::datasets::Dataset;
use fingers_repro::graph::gen::{chung_lu_power_law, ChungLuConfig};
use fingers_repro::pattern::benchmarks::Benchmark;

#[test]
fn dataset_stand_ins_are_reproducible() {
    // (The per-dataset unit tests check determinism of each generator; this
    // covers the end-to-end dataset definitions.)
    let a = Dataset::Mico.load();
    let b = Dataset::Mico.load();
    assert_eq!(a, b);
}

#[test]
fn fingers_simulation_is_deterministic() {
    let g = chung_lu_power_law(&ChungLuConfig::new(150, 900, 17));
    let multi = Benchmark::Cyc.plan();
    let cfg = ChipConfig {
        num_pes: 3,
        ..ChipConfig::default()
    };
    let a = simulate_fingers(&g, &multi, &cfg);
    let b = simulate_fingers(&g, &multi, &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.embeddings, b.embeddings);
    assert_eq!(a.shared_cache, b.shared_cache);
    assert_eq!(a.dram_bytes, b.dram_bytes);
    for (x, y) in a.pes.iter().zip(&b.pes) {
        assert_eq!(x, y);
    }
}

#[test]
fn flexminer_simulation_is_deterministic() {
    let g = chung_lu_power_law(&ChungLuConfig::new(150, 900, 17));
    let multi = Benchmark::Tt.plan();
    let cfg = FlexMinerChipConfig {
        num_pes: 5,
        ..FlexMinerChipConfig::default()
    };
    let a = simulate_flexminer(&g, &multi, &cfg);
    let b = simulate_flexminer(&g, &multi, &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.embeddings, b.embeddings);
}

#[test]
fn plan_compilation_is_deterministic() {
    for bench in Benchmark::ALL {
        let a = bench.plan();
        let b = bench.plan();
        assert_eq!(a.plans(), b.plans(), "{bench}");
    }
}
