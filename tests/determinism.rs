//! Determinism: every layer of the reproduction is bit-for-bit repeatable,
//! which is what makes the evaluation harness's numbers citable.

use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::ChipConfig;
use fingers_repro::flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_repro::graph::datasets::Dataset;
use fingers_repro::graph::gen::{chung_lu_power_law, erdos_renyi, rmat, ChungLuConfig, RmatConfig};
use fingers_repro::graph::CsrGraph;
use fingers_repro::mining::{
    count_benchmark, count_benchmark_parallel_with, count_benchmark_with, EngineConfig,
};
use fingers_repro::pattern::benchmarks::Benchmark;

#[test]
fn dataset_stand_ins_are_reproducible() {
    // (The per-dataset unit tests check determinism of each generator; this
    // covers the end-to-end dataset definitions.)
    let a = Dataset::Mico.load();
    let b = Dataset::Mico.load();
    assert_eq!(a, b);
}

#[test]
fn fingers_simulation_is_deterministic() {
    let g = chung_lu_power_law(&ChungLuConfig::new(150, 900, 17));
    let multi = Benchmark::Cyc.plan();
    let cfg = ChipConfig {
        num_pes: 3,
        ..ChipConfig::default()
    };
    let a = simulate_fingers(&g, &multi, &cfg);
    let b = simulate_fingers(&g, &multi, &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.embeddings, b.embeddings);
    assert_eq!(a.shared_cache, b.shared_cache);
    assert_eq!(a.dram_bytes, b.dram_bytes);
    for (x, y) in a.pes.iter().zip(&b.pes) {
        assert_eq!(x, y);
    }
}

#[test]
fn flexminer_simulation_is_deterministic() {
    let g = chung_lu_power_law(&ChungLuConfig::new(150, 900, 17));
    let multi = Benchmark::Tt.plan();
    let cfg = FlexMinerChipConfig {
        num_pes: 5,
        ..FlexMinerChipConfig::default()
    };
    let a = simulate_flexminer(&g, &multi, &cfg);
    let b = simulate_flexminer(&g, &multi, &cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.embeddings, b.embeddings);
}

/// The load-bearing guarantee of the task-parallel engine: for **every**
/// benchmark, on synthetic datasets of three different degree structures,
/// the parallel count is bit-identical to the sequential count at 1, 2, 4,
/// and 8 threads — with the dense-bitmap kernel tier both enabled and
/// disabled, with terminal-count fusion both enabled and disabled, with
/// the SIMD kernel tier both enabled and disabled, and under both the
/// work-stealing and shared-cursor schedulers. (The reduction is an
/// order-independent `u64` sum over root-partitioned tasks, and all kernel
/// tiers — including the fused count forms and the vector kernels — are
/// property-tested output-identical, so this holds by construction — this
/// test keeps it that way.)
#[test]
fn parallel_counts_are_bit_identical_to_sequential() {
    let graphs: [(&str, CsrGraph); 3] = [
        ("erdos-renyi", erdos_renyi(130, 650, 7)),
        (
            "chung-lu",
            chung_lu_power_law(&ChungLuConfig::new(140, 800, 17)),
        ),
        ("rmat", rmat(&RmatConfig::graph500(7, 700, 3))),
    ];
    // A small hub budget and tiny cache force real eviction traffic, so the
    // bitmap-on arm exercises build/evict/reuse rather than pure hits.
    let configs = [
        ("bitmap off", EngineConfig::without_bitmap()),
        ("bitmap on", EngineConfig::default()),
        (
            "bitmap tiny cache",
            EngineConfig {
                bitmap_hubs: 8,
                bitmap_cache_slots: 2,
                ..EngineConfig::default()
            },
        ),
        ("fusion off", EngineConfig::without_count_fusion()),
        (
            "fusion off, bitmap off",
            EngineConfig {
                bitmap_hubs: 0,
                fuse_terminal_counts: false,
                ..EngineConfig::default()
            },
        ),
        ("simd off", EngineConfig::without_simd()),
        ("stealing off", EngineConfig::without_stealing()),
        (
            "simd off, stealing off",
            EngineConfig {
                simd: false,
                work_stealing: false,
                ..EngineConfig::default()
            },
        ),
        (
            "everything off",
            EngineConfig {
                bitmap_hubs: 0,
                fuse_terminal_counts: false,
                simd: false,
                work_stealing: false,
                ..EngineConfig::default()
            },
        ),
    ];
    for (name, g) in &graphs {
        for bench in Benchmark::ALL {
            let sequential = count_benchmark(g, bench);
            for (cfg_name, cfg) in &configs {
                assert_eq!(
                    count_benchmark_with(g, bench, cfg),
                    sequential,
                    "{name} / {bench} sequential diverged with {cfg_name}"
                );
                for threads in [1, 2, 4, 8] {
                    let parallel = count_benchmark_parallel_with(g, bench, threads, cfg);
                    assert_eq!(
                        parallel, sequential,
                        "{name} / {bench} diverged at {threads} threads with {cfg_name}"
                    );
                }
            }
        }
    }
}

#[test]
fn plan_compilation_is_deterministic() {
    for bench in Benchmark::ALL {
        let a = bench.plan();
        let b = bench.plan();
        assert_eq!(a.plans(), b.plans(), "{bench}");
    }
}
