//! Compiler-oracle validation: the plan pipeline (vertex order, Eq. (1)
//! schedules, postponed anti-subtraction, symmetry breaking) against
//! brute-force enumeration and closed-form counts.

use fingers_repro::graph::gen::{chung_lu_power_law, erdos_renyi, ChungLuConfig};
use fingers_repro::graph::{CsrGraph, GraphBuilder, VertexId};
use fingers_repro::mining::{brute, count_benchmark, count_plan};
use fingers_repro::pattern::benchmarks::Benchmark;
use fingers_repro::pattern::{ExecutionPlan, Induced, Pattern};

fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for a in 0..n as VertexId {
        for b in (a + 1)..n as VertexId {
            edges.push((a, b));
        }
    }
    GraphBuilder::new().edges(edges).build()
}

fn choose(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1))
}

#[test]
fn closed_forms_on_complete_graphs() {
    for n in [5usize, 7, 9] {
        let g = complete(n);
        let n64 = n as u64;
        assert_eq!(count_benchmark(&g, Benchmark::Tc).total(), choose(n64, 3));
        assert_eq!(count_benchmark(&g, Benchmark::Cl4).total(), choose(n64, 4));
        assert_eq!(count_benchmark(&g, Benchmark::Cl5).total(), choose(n64, 5));
        // Vertex-induced non-clique 4-vertex patterns cannot occur in K_n.
        assert_eq!(count_benchmark(&g, Benchmark::Tt).total(), 0);
        assert_eq!(count_benchmark(&g, Benchmark::Cyc).total(), 0);
        assert_eq!(count_benchmark(&g, Benchmark::Dia).total(), 0);
    }
}

#[test]
fn closed_forms_on_cycles_and_stars() {
    // C_n: n wedges, no triangles; exactly one 4-cycle when n = 4.
    let c6 = GraphBuilder::new()
        .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
        .build();
    let mc = count_benchmark(&c6, Benchmark::Mc3);
    assert_eq!(mc.per_pattern, vec![0, 6]);
    let c4 = GraphBuilder::new()
        .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        .build();
    assert_eq!(count_benchmark(&c4, Benchmark::Cyc).total(), 1);

    // Star S_k: C(k, 2) wedges; no 4-vertex benchmark pattern occurs.
    let star = GraphBuilder::new().edges((1..=7).map(|l| (0, l))).build();
    assert_eq!(
        count_benchmark(&star, Benchmark::Mc3).per_pattern,
        vec![0, choose(7, 2)]
    );
    assert_eq!(count_benchmark(&star, Benchmark::Tt).total(), 0);
}

#[test]
fn diamond_and_tailed_triangle_minimal_instances() {
    // The diamond itself contains exactly one diamond and no 4-cycle
    // (vertex-induced: the chord excludes it).
    let dia = GraphBuilder::new()
        .edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)])
        .build();
    assert_eq!(count_benchmark(&dia, Benchmark::Dia).total(), 1);
    assert_eq!(count_benchmark(&dia, Benchmark::Cyc).total(), 0);
    // It contains 2 triangles and 2 tailed triangles (each triangle with
    // the opposite degree-2 vertex as tail... via the degree-3 vertices).
    assert_eq!(count_benchmark(&dia, Benchmark::Tc).total(), 2);
    let brute_tt = brute::count_embeddings(&dia, &Pattern::tailed_triangle(), Induced::Vertex);
    assert_eq!(count_benchmark(&dia, Benchmark::Tt).total(), brute_tt);
}

#[test]
fn plans_match_brute_force_on_many_random_graphs() {
    let patterns = [
        Pattern::triangle(),
        Pattern::clique(4),
        Pattern::tailed_triangle(),
        Pattern::four_cycle(),
        Pattern::diamond(),
        Pattern::wedge(),
        Pattern::path(5),
        Pattern::star(4),
        // The "paw + antenna" shape exercises deep anti-subtraction.
        Pattern::from_edges_named(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4)], "antenna"),
        // The bull: triangle with two horns.
        Pattern::from_edges_named(5, &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4)], "bull"),
    ];
    for seed in 0..3 {
        let graphs = [
            erdos_renyi(13, 30, seed),
            chung_lu_power_law(&ChungLuConfig::new(16, 30, seed + 100)),
        ];
        for g in &graphs {
            for p in &patterns {
                for induced in [Induced::Vertex, Induced::Edge] {
                    let expected = brute::count_embeddings(g, p, induced);
                    let plan = ExecutionPlan::compile(p, induced);
                    let got = count_plan(g, &plan);
                    assert_eq!(got, expected, "{p} ({induced:?}) seed {seed}");
                }
            }
        }
    }
}

#[test]
fn symmetry_breaking_partitions_ordered_maps_exactly() {
    // restricted × |Aut| = ordered maps, across patterns and graphs.
    for seed in [2u64, 8] {
        let g = erdos_renyi(12, 28, seed);
        for p in [
            Pattern::triangle(),
            Pattern::clique(4),
            Pattern::four_cycle(),
            Pattern::diamond(),
            Pattern::star(3),
        ] {
            let ordered = brute::count_ordered_maps(&g, &p, Induced::Vertex);
            let plan = ExecutionPlan::compile(&p, Induced::Vertex);
            let restricted = count_plan(&g, &plan);
            assert_eq!(
                restricted * plan.automorphism_count() as u64,
                ordered,
                "{p} seed {seed}"
            );
        }
    }
}

#[test]
fn every_connected_order_yields_the_same_count() {
    // The strongest compiler-invariance check: schedules, postponed
    // anti-subtractions, and symmetry breaking must be correct for *every*
    // legal matching order, not just the heuristic one.
    use fingers_repro::pattern::all_connected_orders;
    let g = erdos_renyi(14, 36, 6);
    for p in [
        Pattern::tailed_triangle(),
        Pattern::four_cycle(),
        Pattern::diamond(),
        Pattern::wedge(),
        Pattern::bull(),
    ] {
        let reference = brute::count_embeddings(&g, &p, Induced::Vertex);
        for order in all_connected_orders(&p) {
            let plan = ExecutionPlan::compile_with_order(&p, Induced::Vertex, &order);
            assert_eq!(
                count_plan(&g, &plan),
                reference,
                "{p} with order {order:?}\n{plan}"
            );
        }
    }
}

#[test]
fn optimized_plans_count_identically() {
    let g = chung_lu_power_law(&ChungLuConfig::new(40, 150, 5));
    let n = g.vertex_count() as f64;
    let density = g.avg_degree() / (n - 1.0);
    for p in [
        Pattern::tailed_triangle(),
        Pattern::four_cycle(),
        Pattern::house(),
        Pattern::gem(),
    ] {
        let greedy = count_plan(&g, &ExecutionPlan::compile(&p, Induced::Vertex));
        let optimized = count_plan(
            &g,
            &ExecutionPlan::compile_optimized(&p, Induced::Vertex, n, density),
        );
        assert_eq!(greedy, optimized, "{p}");
    }
}

#[test]
fn oblivious_engine_agrees_with_pattern_aware() {
    use fingers_repro::mining::oblivious::count_embeddings_oblivious;
    let g = erdos_renyi(25, 80, 12);
    for p in [
        Pattern::triangle(),
        Pattern::tailed_triangle(),
        Pattern::diamond(),
        Pattern::butterfly(),
    ] {
        let aware = count_plan(&g, &ExecutionPlan::compile(&p, Induced::Vertex));
        let oblivious = count_embeddings_oblivious(&g, &p);
        assert_eq!(aware, oblivious, "{p}");
    }
}

#[test]
fn edge_induced_counts_dominate_vertex_induced() {
    // Every vertex-induced embedding is also edge-induced.
    let g = erdos_renyi(20, 60, 3);
    for p in [
        Pattern::wedge(),
        Pattern::tailed_triangle(),
        Pattern::four_cycle(),
        Pattern::diamond(),
    ] {
        let v = count_plan(&g, &ExecutionPlan::compile(&p, Induced::Vertex));
        let e = count_plan(&g, &ExecutionPlan::compile(&p, Induced::Edge));
        assert!(e >= v, "{p}: edge {e} < vertex {v}");
    }
    // For cliques the two semantics coincide.
    let v = count_plan(
        &g,
        &ExecutionPlan::compile(&Pattern::triangle(), Induced::Vertex),
    );
    let e = count_plan(
        &g,
        &ExecutionPlan::compile(&Pattern::triangle(), Induced::Edge),
    );
    assert_eq!(v, e);
}
