//! Fault-injection suite for the ingestion layer: corrupted, truncated,
//! and I/O-faulty edge lists must surface as typed errors (with line
//! numbers where lines exist) — never as panics — and the sanitizing
//! parser's repair report must be exact.
//!
//! The second half pins the robustness contract end to end: a dirty edge
//! list run through `--sanitize`-style ingestion counts bit-identically to
//! its hand-cleaned equivalent at every thread count and bitmap mode.

use std::io::{self, BufReader, Read};
use std::panic::{catch_unwind, AssertUnwindSafe};

use fingers_repro::graph::io::{read_edge_list, read_edge_list_sanitized, ParseErrorKind};
use fingers_repro::graph::sanitize::SanitizeOptions;
use fingers_repro::graph::CsrGraph;
use fingers_repro::mining::{count_benchmark_parallel_with, EngineConfig};
use fingers_repro::pattern::benchmarks::Benchmark;

/// An `io::Read` wrapper that injects failures at configurable byte
/// offsets: `fail_at` returns an injected error once the offset is
/// reached; `truncate_at` reports a silent EOF there instead.
struct FaultyReader<R> {
    inner: R,
    pos: u64,
    fail_at: Option<u64>,
    truncate_at: Option<u64>,
}

impl<R: Read> FaultyReader<R> {
    fn new(inner: R) -> Self {
        FaultyReader {
            inner,
            pos: 0,
            fail_at: None,
            truncate_at: None,
        }
    }

    fn fail_at(mut self, offset: u64) -> Self {
        self.fail_at = Some(offset);
        self
    }

    fn truncate_at(mut self, offset: u64) -> Self {
        self.truncate_at = Some(offset);
        self
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // The nearest fault boundary bounds how much may still be served.
        let limit = [self.fail_at, self.truncate_at]
            .into_iter()
            .flatten()
            .map(|at| at.saturating_sub(self.pos))
            .min();
        if let Some(0) = limit {
            if self.fail_at.is_some_and(|at| at == self.pos) {
                return Err(io::Error::other("injected disk fault"));
            }
            return Ok(0); // truncation: clean EOF
        }
        let want = match limit {
            Some(l) => buf.len().min(l as usize),
            None => buf.len(),
        };
        let n = self.inner.read(&mut buf[..want])?;
        self.pos += n as u64;
        Ok(n)
    }
}

const CLEAN: &str = "# clean triangle plus tail\n0 1\n0 2\n1 2\n2 3\n";

#[test]
fn injected_io_error_is_a_typed_error_not_a_panic() {
    for offset in 0..CLEAN.len() as u64 {
        let reader = BufReader::new(FaultyReader::new(CLEAN.as_bytes()).fail_at(offset));
        let result = catch_unwind(AssertUnwindSafe(|| read_edge_list(reader)))
            .unwrap_or_else(|_| panic!("parser panicked on I/O fault at offset {offset}"));
        let err = result.expect_err("injected fault must surface");
        assert!(
            matches!(err.kind(), ParseErrorKind::Io(_)),
            "offset {offset}: expected Io error, got {err:?}"
        );
        assert!(err.to_string().contains("injected disk fault"));
    }
}

#[test]
fn truncation_at_every_offset_never_panics() {
    for offset in 0..=CLEAN.len() as u64 {
        let reader = BufReader::new(FaultyReader::new(CLEAN.as_bytes()).truncate_at(offset));
        let result = catch_unwind(AssertUnwindSafe(|| read_edge_list(reader)))
            .unwrap_or_else(|_| panic!("parser panicked on truncation at offset {offset}"));
        // A prefix either still parses (cut at a line boundary) or fails
        // with a typed mid-line error; both are acceptable, panics are not.
        if let Err(err) = result {
            assert!(
                matches!(
                    err.kind(),
                    ParseErrorKind::MissingEndpoint | ParseErrorKind::BadVertexId(_)
                ),
                "offset {offset}: unexpected error kind {err:?}"
            );
            assert!(err.line() >= 1, "offset {offset}: error must carry a line");
        }
    }
}

#[test]
fn truncation_mid_line_reports_the_cut_line() {
    // Cut inside line 3 ("0 2"): the lone "0" is a missing endpoint there.
    let offset = CLEAN.find("0 2").unwrap() as u64 + 1;
    let reader = BufReader::new(FaultyReader::new(CLEAN.as_bytes()).truncate_at(offset));
    let err = read_edge_list(reader).expect_err("truncated mid-line");
    assert_eq!(err.line(), 3);
    assert!(matches!(err.kind(), ParseErrorKind::MissingEndpoint));
}

#[test]
fn corrupted_corpus_yields_typed_errors_with_line_numbers() {
    // (input, expected failing line) — every syntactic corruption class.
    let corpus: &[(&str, usize)] = &[
        ("0 1\n1\n", 2),                 // missing endpoint
        ("0 1\nx 2\n", 2),               // non-numeric first token
        ("0 1\n2 x\n", 2),               // non-numeric second token
        ("0 1\n1 2 3\n", 2),             // trailing token (strict mode)
        ("0 1\n1 -2\n", 2),              // negative ID
        ("0 1\n1 4294967296\n", 2),      // u32 overflow
        ("0 1\n1 2.5\n", 2),             // float
        ("# c\n\n0 1\n0xbeef 2\n", 4),   // hex is not SNAP
        ("0 1\n999999999999999 0\n", 2), // way past u32
    ];
    for (input, want_line) in corpus {
        let result = catch_unwind(AssertUnwindSafe(|| read_edge_list(input.as_bytes())))
            .unwrap_or_else(|_| panic!("parser panicked on {input:?}"));
        let err = result.expect_err("corrupted input must not parse");
        assert_eq!(err.line(), *want_line, "input {input:?}");
        assert!(err.to_string().contains(&format!("line {want_line}")));
    }
}

#[test]
fn sanitizing_parser_never_panics_on_the_same_corpus() {
    // The sanitizing path tolerates trailing tokens but must reject the
    // rest with the same typed errors, and must never panic.
    let corpus = [
        "0 1\n1\n",
        "0 1\nx 2\n",
        "0 1\n1 2 3\n",
        "2 2\n1 0\n1 0\n",
        "",
        "# only comments\n",
    ];
    for input in corpus {
        let result = catch_unwind(AssertUnwindSafe(|| {
            read_edge_list_sanitized(input.as_bytes(), &SanitizeOptions::default())
        }))
        .unwrap_or_else(|_| panic!("sanitizing parser panicked on {input:?}"));
        if let Err(err) = result {
            assert!(
                !matches!(err.kind(), ParseErrorKind::TrailingTokens(_)),
                "sanitizing parser must tolerate trailing tokens, rejected {input:?}"
            );
        }
    }
}

#[test]
fn sanitize_report_is_exact() {
    // 2 self loops, 3 duplicates (one via reversal), 1 out-of-range ID,
    // 2 trailing-token lines, 9 lines seen.
    let dirty = "\
0 0
5 5
0 1
1 0
0 1
0 1 weight=3
7 2
1 2 extra
2 1
";
    let options = SanitizeOptions::with_max_vertex_id(5);
    let (graph, report) = read_edge_list_sanitized(dirty.as_bytes(), &options).expect("sanitizes");
    assert_eq!(report.edges_seen, 9);
    assert_eq!(report.self_loops_dropped, 2);
    assert_eq!(report.out_of_range_dropped, 1); // "7 2"
    assert_eq!(report.duplicates_dropped, 4); // 3 extra 0-1s + 1 extra 1-2
    assert_eq!(report.trailing_token_lines, 2);
    assert_eq!(report.edges_kept, 2); // 0-1 and 1-2
    assert_eq!(graph.edge_count(), 2);
    assert!(!report.is_clean());
    let s = report.summary();
    assert!(s.contains("kept 2/9"), "summary: {s}");
}

/// Builds the dirty graph through the sanitizing parser and the same graph
/// from a hand-cleaned edge list, then checks every benchmark count is
/// bit-identical across thread counts and bitmap configurations.
#[test]
fn sanitized_dirty_graph_counts_like_its_clean_equivalent() {
    // K4 ∪ a pendant edge, buried in dirt: duplicates (both directions),
    // self loops, trailing tokens, comments.
    let dirty = "\
# K4 plus tail, scrambled
1 0
0 1
2 0 dup=no
0 3
1 2
3 1
2 3
2 2
4 3
3 4
0 0 again
";
    let clean = "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n";

    let (dirty_graph, report) =
        read_edge_list_sanitized(dirty.as_bytes(), &SanitizeOptions::default()).expect("sanitizes");
    assert!(!report.is_clean());
    let clean_graph: CsrGraph = read_edge_list(clean.as_bytes()).expect("clean parses");
    assert_eq!(dirty_graph, clean_graph);

    let configs = [
        EngineConfig::without_bitmap(),
        EngineConfig::default(),
        EngineConfig {
            bitmap_hubs: 4,
            bitmap_cache_slots: 2,
            ..EngineConfig::default()
        },
        EngineConfig::without_count_fusion(),
    ];
    for bench in Benchmark::ALL {
        for cfg in &configs {
            for threads in [1, 2, 4] {
                let from_dirty = count_benchmark_parallel_with(&dirty_graph, bench, threads, cfg);
                let from_clean = count_benchmark_parallel_with(&clean_graph, bench, threads, cfg);
                assert_eq!(
                    from_dirty, from_clean,
                    "{bench} diverged at {threads} threads (hubs {})",
                    cfg.bitmap_hubs
                );
            }
        }
    }
}
