//! Integration tests for the architectural extensions: NoC latency,
//! execution tracing, root scheduling, and graph reordering — all layered
//! on the frozen timing core without changing functional results.

use fingers_repro::core::chip::{simulate_fingers, simulate_fingers_scheduled, RootSchedule};
use fingers_repro::core::config::{ChipConfig, PeConfig};
use fingers_repro::core::pe::FingersPe;
use fingers_repro::graph::gen::{
    chung_lu_power_law, grid, king_grid, rmat, ChungLuConfig, RmatConfig,
};
use fingers_repro::graph::reorder;
use fingers_repro::mining::count_benchmark;
use fingers_repro::pattern::benchmarks::Benchmark;
use fingers_repro::sim::{MemoryConfig, MemorySystem};

#[test]
fn grid_graphs_have_closed_form_cycle_counts() {
    // (rows−1)(cols−1) unit squares, each a vertex-induced 4-cycle; and a
    // grid has no triangles, diamonds or tailed triangles.
    for (r, c) in [(2usize, 2usize), (3, 4), (5, 5)] {
        let g = grid(r, c);
        let cyc = count_benchmark(&g, Benchmark::Cyc).total();
        assert_eq!(cyc as usize, (r - 1) * (c - 1), "{r}x{c}");
        assert_eq!(count_benchmark(&g, Benchmark::Tc).total(), 0);
    }
    // King grids are triangle-rich: each unit square has 4 triangles from
    // its two diagonals... verified against the software miner's own
    // brute-force-validated count on a small instance.
    let kg = king_grid(3, 3);
    assert!(count_benchmark(&kg, Benchmark::Tc).total() >= 16);
}

#[test]
fn rmat_graphs_mine_consistently_across_engines() {
    let g = rmat(&RmatConfig::graph500(9, 2_000, 5));
    for bench in [Benchmark::Tc, Benchmark::Tt] {
        let sw = count_benchmark(&g, bench);
        let hw = simulate_fingers(&g, &bench.plan(), &ChipConfig::single_pe());
        assert_eq!(hw.embeddings, sw.per_pattern, "{bench}");
    }
}

#[test]
fn noc_latency_slows_but_never_corrupts() {
    let g = chung_lu_power_law(&ChungLuConfig::new(200, 1200, 4));
    let multi = Benchmark::Tt.plan();
    let fast = simulate_fingers(
        &g,
        &multi,
        &ChipConfig {
            num_pes: 4,
            noc_per_hop: 0,
            noc_base: 0,
            ..ChipConfig::default()
        },
    );
    let slow = simulate_fingers(
        &g,
        &multi,
        &ChipConfig {
            num_pes: 4,
            noc_per_hop: 20,
            noc_base: 40,
            ..ChipConfig::default()
        },
    );
    assert_eq!(fast.embeddings, slow.embeddings);
    assert!(
        slow.cycles > fast.cycles,
        "slow NoC {} vs no NoC {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn trace_captures_a_tree_walk() {
    let g = grid(4, 4);
    let multi = Benchmark::Cyc.plan();
    let cfg = PeConfig {
        trace_capacity: 10_000,
        ..PeConfig::default()
    };
    let mut mem = MemorySystem::new(MemoryConfig::paper_default());
    let mut pe = FingersPe::new(&g, &multi, cfg);
    use fingers_repro::core::chip::PeModel;
    for v in g.vertices() {
        pe.start_tree(v);
        while pe.has_work() {
            pe.step(&mut mem);
        }
    }
    let trace = pe.trace();
    let starts = trace
        .events()
        .filter(|e| matches!(e, fingers_repro::core::trace::TraceEvent::TaskStart { .. }))
        .count();
    let retires = trace
        .events()
        .filter(|e| matches!(e, fingers_repro::core::trace::TraceEvent::TaskRetire { .. }))
        .count();
    assert_eq!(starts, retires, "every started task retires");
    assert!(starts > 0);
    // Retire timestamps never precede their own start (per event pairing we
    // at least require global monotonicity of the max).
    let max_cycle = trace.events().map(|e| e.cycle()).max().unwrap_or(0);
    assert!(max_cycle > 0);
}

#[test]
fn degree_reordering_preserves_counts_and_can_change_time() {
    let g = chung_lu_power_law(&ChungLuConfig::new(300, 2400, 8));
    let reordered = reorder::by_degree_descending(&g);
    for bench in [Benchmark::Tc, Benchmark::Cl4] {
        let a = count_benchmark(&g, bench).per_pattern;
        let b = count_benchmark(&reordered.graph, bench).per_pattern;
        assert_eq!(a, b, "{bench}");
        // And on the accelerator too.
        let ha = simulate_fingers(&g, &bench.plan(), &ChipConfig::single_pe());
        let hb = simulate_fingers(&reordered.graph, &bench.plan(), &ChipConfig::single_pe());
        assert_eq!(ha.embeddings, hb.embeddings, "{bench}");
    }
}

#[test]
fn root_schedules_agree_on_results_with_many_pes() {
    let g = rmat(&RmatConfig::graph500(10, 4_000, 2));
    let multi = Benchmark::Tc.plan();
    let cfg = ChipConfig {
        num_pes: 6,
        ..ChipConfig::default()
    };
    let seq = simulate_fingers_scheduled(&g, &multi, &cfg, RootSchedule::Sequential);
    for schedule in [RootSchedule::Strided, RootSchedule::DegreeDescending] {
        let r = simulate_fingers_scheduled(&g, &multi, &cfg, schedule);
        assert_eq!(r.embeddings, seq.embeddings, "{schedule:?}");
    }
}
