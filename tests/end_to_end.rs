//! Cross-crate end-to-end tests: the software miner, the FINGERS chip, and
//! the FlexMiner chip must agree functionally on every benchmark, for any
//! graph and any hardware configuration.

use fingers_repro::core::chip::simulate_fingers;
use fingers_repro::core::config::{ChipConfig, PeConfig};
use fingers_repro::flexminer::{simulate_flexminer, FlexMinerChipConfig};
use fingers_repro::graph::gen::{
    chung_lu_power_law, erdos_renyi, plant_cliques, ChungLuConfig, PlantedCliques,
};
use fingers_repro::graph::CsrGraph;
use fingers_repro::mining::count_benchmark;
use fingers_repro::pattern::benchmarks::Benchmark;

fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("uniform", erdos_renyi(80, 400, 1)),
        (
            "power-law",
            chung_lu_power_law(&ChungLuConfig::new(120, 600, 2)),
        ),
        (
            "clique-rich",
            plant_cliques(
                &erdos_renyi(70, 200, 3),
                &PlantedCliques {
                    count: 8,
                    min_size: 4,
                    max_size: 7,
                    seed: 4,
                },
            ),
        ),
    ]
}

#[test]
fn all_three_engines_agree_on_every_benchmark() {
    for (name, g) in test_graphs() {
        for bench in Benchmark::ALL {
            let sw = count_benchmark(&g, bench);
            let multi = bench.plan();
            let fi = simulate_fingers(&g, &multi, &ChipConfig::single_pe());
            let fm = simulate_flexminer(&g, &multi, &FlexMinerChipConfig::single_pe());
            assert_eq!(fi.embeddings, sw.per_pattern, "FINGERS {bench} on {name}");
            assert_eq!(fm.embeddings, sw.per_pattern, "FlexMiner {bench} on {name}");
        }
    }
}

#[test]
fn pe_count_never_changes_results() {
    let g = chung_lu_power_law(&ChungLuConfig::new(150, 900, 9));
    for bench in [Benchmark::Tc, Benchmark::Tt, Benchmark::Cyc, Benchmark::Mc3] {
        let multi = bench.plan();
        let base = simulate_fingers(&g, &multi, &ChipConfig::single_pe());
        for pes in [2usize, 5, 20] {
            let r = simulate_fingers(
                &g,
                &multi,
                &ChipConfig {
                    num_pes: pes,
                    ..ChipConfig::default()
                },
            );
            assert_eq!(r.embeddings, base.embeddings, "{bench} with {pes} PEs");
        }
    }
}

#[test]
fn hardware_parameters_never_change_results() {
    let g = erdos_renyi(60, 300, 5);
    let multi = Benchmark::Dia.plan();
    let base = simulate_fingers(&g, &multi, &ChipConfig::single_pe());
    let variants = [
        PeConfig::iso_area_ius(1),
        PeConfig::iso_area_ius(4),
        PeConfig::iso_area_ius(48),
        PeConfig::unlimited_area_ius(48),
        PeConfig {
            max_load: 1,
            ..PeConfig::default()
        },
        PeConfig {
            max_load: 7,
            ..PeConfig::default()
        },
        PeConfig {
            pseudo_dfs: false,
            ..PeConfig::default()
        },
        PeConfig {
            num_dividers: 1,
            ..PeConfig::default()
        },
        PeConfig {
            private_cache_bytes: 8 * 1024,
            ..PeConfig::default()
        },
        PeConfig {
            long_segment_len: 5,
            short_segment_len: 3,
            ..PeConfig::default()
        },
    ];
    for (i, pe) in variants.into_iter().enumerate() {
        let mut cfg = ChipConfig::single_pe();
        cfg.pe = pe;
        let r = simulate_fingers(&g, &multi, &cfg);
        assert_eq!(r.embeddings, base.embeddings, "variant {i}");
    }
}

#[test]
fn cache_capacity_never_changes_results() {
    let g = chung_lu_power_law(&ChungLuConfig::new(100, 700, 8));
    let multi = Benchmark::Cyc.plan();
    let base = simulate_fingers(&g, &multi, &ChipConfig::single_pe());
    for mb in [2.0, 8.0, 16.0] {
        let r = simulate_fingers(
            &g,
            &multi,
            &ChipConfig::single_pe().with_shared_cache_mb(mb),
        );
        assert_eq!(r.embeddings, base.embeddings, "{mb} MB");
        let fm = simulate_flexminer(
            &g,
            &multi,
            &FlexMinerChipConfig::single_pe().with_shared_cache_mb(mb),
        );
        assert_eq!(fm.embeddings, base.embeddings, "FlexMiner {mb} MB");
    }
}

#[test]
fn fingers_wins_on_every_benchmark_at_iso_area() {
    // The headline claim, at small scale: 2-PE FINGERS vs 4-PE FlexMiner
    // (the same 1:2 PE ratio as the paper's 20 vs 40). The graph carries
    // both hubs and planted cliques so every benchmark has real work —
    // on nearly clique-free graphs 5cl degenerates to almost no tasks and
    // the comparison is dominated by the root-scan, as in the paper's
    // weakest Fig. 10 cells.
    let g = plant_cliques(
        &chung_lu_power_law(&ChungLuConfig::new(300, 4500, 4)),
        &PlantedCliques {
            count: 25,
            min_size: 5,
            max_size: 8,
            seed: 9,
        },
    );
    for bench in Benchmark::ALL {
        let multi = bench.plan();
        let fi = simulate_fingers(
            &g,
            &multi,
            &ChipConfig {
                num_pes: 2,
                ..ChipConfig::default()
            },
        );
        let fm = simulate_flexminer(
            &g,
            &multi,
            &FlexMinerChipConfig {
                num_pes: 4,
                ..FlexMinerChipConfig::default()
            },
        );
        assert_eq!(fi.embeddings, fm.embeddings, "{bench}");
        let speedup = fm.cycles as f64 / fi.cycles as f64;
        if matches!(bench, Benchmark::Cl4 | Benchmark::Cl5) {
            // Deep cliques benefit mostly from branch-level parallelism
            // (paper Fig. 11), which hides *memory* latency — absent on a
            // graph this small and cache-resident. Require parity only;
            // the full-scale Figure 10 harness shows the real wins.
            assert!(
                speedup > 0.8,
                "{bench}: FINGERS {} vs FlexMiner {}",
                fi.cycles,
                fm.cycles
            );
        } else {
            assert!(
                speedup > 1.0,
                "{bench}: FINGERS {} vs FlexMiner {}",
                fi.cycles,
                fm.cycles
            );
        }
    }
}

#[test]
fn stall_and_utilization_stats_are_sane() {
    let g = chung_lu_power_law(&ChungLuConfig::new(200, 1500, 6));
    let r = simulate_fingers(&g, &Benchmark::Tt.plan(), &ChipConfig::single_pe());
    assert!(r.active_rate() > 0.0 && r.active_rate() <= 1.0);
    assert!(r.balance_rate() > 0.0 && r.balance_rate() <= 1.0 + 1e-9);
    let pe = &r.pes[0];
    assert!(pe.tasks > 0);
    assert!(pe.set_ops > 0);
    assert!(pe.workloads >= pe.set_ops / 2);
    assert!(pe.cycles >= pe.stall_cycles);
}
